#include "shard/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"
#include "sph/acceleration.hpp"
#include "sph/corrections.hpp"
#include "sph/energy.hpp"
#include "sph/extras.hpp"
#include "sph/pipeline.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace hacc::shard {

namespace {

// Ghost-load packing widths (floats per particle).
constexpr std::uint32_t kDmLoadWords = 4;    // x, y, z, mass
constexpr std::uint32_t kGasLoadWords = 10;  // x, y, z, v, mass, h, V, u

// Field refresh rounds between dependent SPH kernels: each kernel's
// neighbor reads must see owner-computed values, so after a kernel writes a
// field the owners re-broadcast it to every shard holding a ghost copy.
constexpr std::uint32_t kRefreshWords[3] = {
    1,   // round 0 after Geometry: V
    16,  // round 1 after Corrections: the CRK coefficient block
    3,   // round 2 after Extras: rho, P, cs
};

}  // namespace

struct ShardEngine::Shard {
  int rank = 0;

  // Residency and halo membership, as global combined (dm-then-gas) ids.
  std::vector<std::int64_t> res_dm, res_gas;
  std::vector<std::int64_t> gho_dm, gho_gas;

  // Export plan, frozen between reshards: which of my residents are ghosts
  // on which neighbor (resident-local indices, so a mid-evaluation field
  // refresh packs straight out of the local stores).
  struct Export {
    int to = -1;
    std::vector<std::int32_t> dm, gas;
  };
  std::vector<Export> exports;

  // Import blocks in canonical (sender-sorted) drain order; refresh rounds
  // unpack positionally against these.
  struct Block {
    int from = -1;
    std::int32_t count = 0;
  };
  std::vector<Block> dm_blocks, gas_blocks;

  // Local stores: residents first, then ghosts.  Dark matter only needs
  // what gravity reads; baryons carry the full kernel state.
  std::vector<float> dm_x, dm_y, dm_z, dm_mass;
  core::ParticleSet gas_local;

  // Combined local gather [dm res, dm gho, gas res, gas gho] and the
  // shard's own interaction domain over it.
  std::vector<util::Vec3d> pos;
  std::unique_ptr<domain::InteractionDomain> dom;

  // Scratch reused across evaluations.
  std::vector<float> lx, ly, lz, lmass;    // combined-order floats (PP walk)
  std::vector<double> acc;                 // 3 * local-count double sums
  std::vector<tree::LeafPair> sph_pairs;   // one walk feeds all five kernels

  // This shard's accumulated P-P walk time: the per-shard critical path the
  // migration bench reports (what bounds wall time once cores >= shards).
  double pp_seconds = 0.0;

  std::size_t n_dm_res() const { return res_dm.size(); }
  std::size_t n_gas_res() const { return res_gas.size(); }
  std::size_t n_dm_local() const { return res_dm.size() + gho_dm.size(); }
  std::size_t n_gas_local() const { return res_gas.size() + gho_gas.size(); }
};

ShardEngine::ShardEngine(const ShardOptions& opt,
                         std::unique_ptr<Transport> transport)
    : opt_(opt), layout_(ShardLayout::make(opt.box, opt.count)) {
  if (!(opt_.ghost_factor >= 1.0)) {
    throw std::invalid_argument("ShardEngine: ghost_factor must be >= 1");
  }
  if (!(opt_.range >= 0.0) || !(opt_.skin >= 0.0)) {
    throw std::invalid_argument("ShardEngine: range and skin must be >= 0");
  }
  if (opt_.leaf_size < 1) {
    throw std::invalid_argument("ShardEngine: leaf_size must be >= 1");
  }
  if (opt_.pool == nullptr) {
    throw std::invalid_argument("ShardEngine: a thread pool is required");
  }
  // The halo must cover every pair a resident can interact with until the
  // next migration: the interaction range, the ghost_factor slack, plus one
  // full skin (both endpoints may drift skin/2 between reshards).
  ghost_radius_ = opt_.ghost_factor * opt_.range + opt_.skin;
  if (transport) {
    if (transport->size() != layout_.count()) {
      throw std::invalid_argument(
          "ShardEngine: transport endpoint count must equal the shard count");
    }
    transport_ = std::move(transport);
  } else {
    transport_ = std::make_unique<InProcTransport>(layout_.count());
  }
  shards_.resize(static_cast<std::size_t>(layout_.count()));
  for (int s = 0; s < layout_.count(); ++s) {
    shards_[static_cast<std::size_t>(s)].rank = s;
  }
}

ShardEngine::~ShardEngine() = default;

bool ShardEngine::reshard_needed(std::span<const util::Vec3d> pos) const {
  if (!assigned_ || pos.size() != n_dm_ + n_gas_) return true;
  if (opt_.rebuild == domain::RebuildPolicy::kAlways || !(opt_.skin > 0.0)) {
    return true;
  }
  // Max minimum-image drift since the last reshard, early-exiting once the
  // verdict is forced — the same discipline as the interaction domain.
  const double thresh2 = 0.25 * opt_.skin * opt_.skin;
  const double box = opt_.box;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    double dx = pos[i].x - ref_pos_[i].x;
    double dy = pos[i].y - ref_pos_[i].y;
    double dz = pos[i].z - ref_pos_[i].z;
    dx -= box * std::round(dx / box);
    dy -= box * std::round(dy / box);
    dz -= box * std::round(dz / box);
    if (dx * dx + dy * dy + dz * dz > thresh2) return true;
  }
  return false;
}

void ShardEngine::reshard(std::span<const util::Vec3d> pos) {
  const int count = layout_.count();
  if (!assigned_ || pos.size() != n_dm_ + n_gas_) {
    // Initial distribution: residency is assigned directly from positions,
    // the way an MPI run would scatter its initial conditions.
    for (Shard& s : shards_) {
      s.res_dm.clear();
      s.res_gas.clear();
    }
    for (std::size_t id = 0; id < pos.size(); ++id) {
      Shard& owner = shards_[static_cast<std::size_t>(layout_.owner_of(pos[id]))];
      (id < n_dm_ ? owner.res_dm : owner.res_gas)
          .push_back(static_cast<std::int64_t>(id));
    }
    assigned_ = true;
  } else {
    // Residency handover: each shard scans its residents against the
    // layout, keeps the stayers in order, and mails the leavers to their
    // new owners.  Combined global ids disambiguate the species.
    std::vector<std::uint64_t> arrived(static_cast<std::size_t>(count), 0);
    // shared: shards_ (one shard per iteration), transport_ (thread-safe
    // shared: send), pos (read-only).
    opt_.pool->parallel_for_chunks(count, 1, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t si = b; si < e; ++si) {
        Shard& s = shards_[static_cast<std::size_t>(si)];
        std::vector<std::vector<std::int64_t>> leaving(
            static_cast<std::size_t>(count));
        const auto scan = [&](std::vector<std::int64_t>& res) {
          std::size_t keep = 0;
          for (const std::int64_t id : res) {
            const int owner =
                layout_.owner_of(pos[static_cast<std::size_t>(id)]);
            if (owner == s.rank) {
              res[keep++] = id;
            } else {
              leaving[static_cast<std::size_t>(owner)].push_back(id);
            }
          }
          res.resize(keep);
        };
        scan(s.res_dm);
        scan(s.res_gas);
        for (int dest = 0; dest < count; ++dest) {
          auto& ids = leaving[static_cast<std::size_t>(dest)];
          if (ids.empty()) continue;
          Message m;
          m.kind = MsgKind::kMigrate;
          m.from = s.rank;
          m.to = dest;
          m.ids = std::move(ids);
          transport_->send(std::move(m));
        }
      }
    });
    // shared: shards_ (one shard per iteration), transport_ (per-rank
    // shared: receive), arrived (one slot per iteration).
    opt_.pool->parallel_for_chunks(count, 1, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t si = b; si < e; ++si) {
        Shard& s = shards_[static_cast<std::size_t>(si)];
        for (const Message& m : transport_->receive(s.rank)) {
          for (const std::int64_t id : m.ids) {
            (static_cast<std::size_t>(id) < n_dm_ ? s.res_dm : s.res_gas)
                .push_back(id);
          }
          arrived[static_cast<std::size_t>(si)] += m.ids.size();
        }
      }
    });
    for (const std::uint64_t a : arrived) stats_.migrated += a;
  }
  // Canonical residency order: sorting by global id makes every resident
  // list a pure function of the position set, independent of migration
  // history.  A restarted run reshards from scratch yet rebuilds the same
  // local arrays — and therefore the same trees, walk order, and bitwise
  // force sums — as the run that arrived here step by step.
  // shared: shards_ (one shard per iteration).
  opt_.pool->parallel_for_chunks(count, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t si = b; si < e; ++si) {
      Shard& s = shards_[static_cast<std::size_t>(si)];
      std::sort(s.res_dm.begin(), s.res_dm.end());
      std::sort(s.res_gas.begin(), s.res_gas.end());
    }
  });
  ++stats_.reshards;
  if (opt_.rebuild == domain::RebuildPolicy::kDisplacement &&
      opt_.skin > 0.0) {
    ref_pos_.assign(pos.begin(), pos.end());
  }
}

void ShardEngine::plan_ghosts(std::span<const util::Vec3d> pos) {
  const int count = layout_.count();
  // shared: shards_ (one shard per iteration), pos/layout_ (read-only).
  opt_.pool->parallel_for_chunks(count, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t si = b; si < e; ++si) {
      Shard& s = shards_[static_cast<std::size_t>(si)];
      s.exports.clear();
      for (const int nb : layout_.neighbors_within(s.rank, ghost_radius_)) {
        Shard::Export ex;
        ex.to = nb;
        const auto collect = [&](const std::vector<std::int64_t>& res,
                                 std::vector<std::int32_t>& out) {
          for (std::size_t j = 0; j < res.size(); ++j) {
            const util::Vec3d& p = pos[static_cast<std::size_t>(res[j])];
            if (layout_.distance_to(nb, p) <= ghost_radius_) {
              out.push_back(static_cast<std::int32_t>(j));
            }
          }
        };
        collect(s.res_dm, ex.dm);
        collect(s.res_gas, ex.gas);
        if (!ex.dm.empty() || !ex.gas.empty()) {
          s.exports.push_back(std::move(ex));
        }
      }
    }
  });
}

void ShardEngine::load_residents(const core::ParticleSet& dm,
                                 const core::ParticleSet& gas) {
  // Solver -> shard boundary: each shard gathers its residents' current
  // field data from the canonical sets (rank-local under MPI).
  const int count = layout_.count();
  // shared: shards_ (one shard per iteration), dm/gas (read-only).
  opt_.pool->parallel_for_chunks(count, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t si = b; si < e; ++si) {
      Shard& s = shards_[static_cast<std::size_t>(si)];
      const std::size_t ndr = s.n_dm_res();
      const std::size_t ngr = s.n_gas_res();
      s.dm_x.resize(s.n_dm_local());
      s.dm_y.resize(s.n_dm_local());
      s.dm_z.resize(s.n_dm_local());
      s.dm_mass.resize(s.n_dm_local());
      s.gas_local.resize(s.n_gas_local());
      for (std::size_t j = 0; j < ndr; ++j) {
        const std::size_t g = static_cast<std::size_t>(s.res_dm[j]);
        s.dm_x[j] = dm.x[g];
        s.dm_y[j] = dm.y[g];
        s.dm_z[j] = dm.z[g];
        s.dm_mass[j] = dm.mass[g];
      }
      for (std::size_t j = 0; j < ngr; ++j) {
        const std::size_t g = static_cast<std::size_t>(s.res_gas[j]) - n_dm_;
        s.gas_local.x[j] = gas.x[g];
        s.gas_local.y[j] = gas.y[g];
        s.gas_local.z[j] = gas.z[g];
        s.gas_local.vx[j] = gas.vx[g];
        s.gas_local.vy[j] = gas.vy[g];
        s.gas_local.vz[j] = gas.vz[g];
        s.gas_local.mass[j] = gas.mass[g];
        s.gas_local.h[j] = gas.h[g];
        s.gas_local.V[j] = gas.V[g];
        s.gas_local.u[j] = gas.u[g];
      }
    }
  });
}

void ShardEngine::exchange_ghost_load() {
  const int count = layout_.count();
  // Pack + send: owners broadcast their exported residents' load fields.
  // shared: shards_ (one shard per iteration; only its own resident slots
  // shared: are read), transport_ (thread-safe send).
  opt_.pool->parallel_for_chunks(count, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t si = b; si < e; ++si) {
      Shard& s = shards_[static_cast<std::size_t>(si)];
      for (const Shard::Export& ex : s.exports) {
        if (!ex.dm.empty()) {
          Message m;
          m.kind = MsgKind::kGhostLoad;
          m.from = s.rank;
          m.to = ex.to;
          m.tag = 0;
          m.words = kDmLoadWords;
          m.ids.reserve(ex.dm.size());
          m.payload.reserve(kDmLoadWords * ex.dm.size());
          for (const std::int32_t j : ex.dm) {
            m.ids.push_back(s.res_dm[static_cast<std::size_t>(j)]);
            m.payload.push_back(s.dm_x[static_cast<std::size_t>(j)]);
            m.payload.push_back(s.dm_y[static_cast<std::size_t>(j)]);
            m.payload.push_back(s.dm_z[static_cast<std::size_t>(j)]);
            m.payload.push_back(s.dm_mass[static_cast<std::size_t>(j)]);
          }
          transport_->send(std::move(m));
        }
        if (!ex.gas.empty()) {
          Message m;
          m.kind = MsgKind::kGhostLoad;
          m.from = s.rank;
          m.to = ex.to;
          m.tag = 1;
          m.words = kGasLoadWords;
          m.ids.reserve(ex.gas.size());
          m.payload.reserve(kGasLoadWords * ex.gas.size());
          const core::ParticleSet& p = s.gas_local;
          for (const std::int32_t ji : ex.gas) {
            const std::size_t j = static_cast<std::size_t>(ji);
            m.ids.push_back(s.res_gas[j]);
            const float fields[kGasLoadWords] = {p.x[j],  p.y[j], p.z[j],
                                                 p.vx[j], p.vy[j], p.vz[j],
                                                 p.mass[j], p.h[j], p.V[j],
                                                 p.u[j]};
            m.payload.insert(m.payload.end(), fields, fields + kGasLoadWords);
          }
          transport_->send(std::move(m));
        }
      }
    }
  });
  // Drain + unpack, in the transport's canonical sender order.  Between
  // reshards the plans are frozen, so the blocks line up positionally and
  // the halo refreshes in place; after a reshard they are rebuilt.
  std::vector<std::uint64_t> copies(static_cast<std::size_t>(count), 0);
  // shared: shards_ (one shard per iteration), transport_ (per-rank
  // shared: receive), copies (one slot per iteration).
  opt_.pool->parallel_for_chunks(count, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t si = b; si < e; ++si) {
      Shard& s = shards_[static_cast<std::size_t>(si)];
      s.gho_dm.clear();
      s.gho_gas.clear();
      s.dm_blocks.clear();
      s.gas_blocks.clear();
      const std::size_t ndr = s.n_dm_res();
      const std::size_t ngr = s.n_gas_res();
      s.dm_x.resize(ndr);
      s.dm_y.resize(ndr);
      s.dm_z.resize(ndr);
      s.dm_mass.resize(ndr);
      s.gas_local.resize(ngr);
      for (const Message& m : transport_->receive(s.rank)) {
        const std::int32_t n = static_cast<std::int32_t>(m.ids.size());
        if (n == 0) continue;
        if (m.tag == 0) {
          s.dm_blocks.push_back({m.from, n});
          s.gho_dm.insert(s.gho_dm.end(), m.ids.begin(), m.ids.end());
          std::size_t w = 0;
          for (std::int32_t k = 0; k < n; ++k) {
            s.dm_x.push_back(m.payload[w++]);
            s.dm_y.push_back(m.payload[w++]);
            s.dm_z.push_back(m.payload[w++]);
            s.dm_mass.push_back(m.payload[w++]);
          }
        } else {
          s.gas_blocks.push_back({m.from, n});
          const std::size_t base = s.gas_local.size();
          s.gho_gas.insert(s.gho_gas.end(), m.ids.begin(), m.ids.end());
          s.gas_local.resize(base + static_cast<std::size_t>(n));
          std::size_t w = 0;
          for (std::int32_t k = 0; k < n; ++k) {
            const std::size_t j = base + static_cast<std::size_t>(k);
            s.gas_local.x[j] = m.payload[w++];
            s.gas_local.y[j] = m.payload[w++];
            s.gas_local.z[j] = m.payload[w++];
            s.gas_local.vx[j] = m.payload[w++];
            s.gas_local.vy[j] = m.payload[w++];
            s.gas_local.vz[j] = m.payload[w++];
            s.gas_local.mass[j] = m.payload[w++];
            s.gas_local.h[j] = m.payload[w++];
            s.gas_local.V[j] = m.payload[w++];
            s.gas_local.u[j] = m.payload[w++];
          }
        }
        copies[static_cast<std::size_t>(si)] +=
            static_cast<std::uint64_t>(n);
      }
    }
  });
  for (const std::uint64_t c : copies) stats_.ghost_copies += c;
}

void ShardEngine::update_domains() {
  const int count = layout_.count();
  std::vector<std::uint64_t> builds(static_cast<std::size_t>(count), 0);
  std::vector<std::uint64_t> reuses(static_cast<std::size_t>(count), 0);
  // Per-shard trees build serially inside a shard (the shard is the unit of
  // parallelism here), so the outer loop carries all the concurrency.
  // shared: shards_ (one shard per iteration), builds/reuses (one slot per
  // shared: iteration).
  opt_.pool->parallel_for_chunks(count, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t si = b; si < e; ++si) {
      Shard& s = shards_[static_cast<std::size_t>(si)];
      const std::size_t ndl = s.n_dm_local();
      const std::size_t n = ndl + s.n_gas_local();
      s.pos.resize(n);
      for (std::size_t j = 0; j < ndl; ++j) {
        s.pos[j] = {s.dm_x[j], s.dm_y[j], s.dm_z[j]};
      }
      for (std::size_t j = 0; j < s.n_gas_local(); ++j) {
        s.pos[ndl + j] = s.gas_local.pos_of(j);
      }
      if (n == 0) continue;  // an empty shard has no tree to keep current
      if (!s.dom) {
        domain::DomainOptions dopt;
        dopt.box = opt_.box;
        dopt.leaf_size = opt_.leaf_size;
        dopt.skin = opt_.skin;
        dopt.rebuild = opt_.rebuild;
        dopt.pool = nullptr;
        s.dom = std::make_unique<domain::InteractionDomain>(dopt);
      }
      const domain::DomainStats before = s.dom->stats();
      s.dom->update(s.pos, ndl);
      builds[static_cast<std::size_t>(si)] =
          s.dom->stats().builds - before.builds;
      reuses[static_cast<std::size_t>(si)] =
          s.dom->stats().reuses - before.reuses;
    }
  });
  for (int si = 0; si < count; ++si) {
    stats_.tree_builds += builds[static_cast<std::size_t>(si)];
    stats_.tree_reuses += reuses[static_cast<std::size_t>(si)];
  }
}

void ShardEngine::prepare(const core::ParticleSet& dm,
                          const core::ParticleSet& gas,
                          std::span<const util::Vec3d> pos) {
  if (pos.size() != dm.size() + gas.size()) {
    throw std::invalid_argument(
        "ShardEngine::prepare: pos must be the combined dm-then-gas gather");
  }
  const bool resh = reshard_needed(pos) ||
                    dm.size() != n_dm_ || gas.size() != n_gas_;
  {
    const obs::TraceSpan span("shard.migrate");
    const double t0 = util::wtime();
    if (resh) {
      if (dm.size() != n_dm_ || gas.size() != n_gas_) assigned_ = false;
      n_dm_ = dm.size();
      n_gas_ = gas.size();
      reshard(pos);
      plan_ghosts(pos);
    }
    stats_.migrate_seconds += util::wtime() - t0;
  }
  {
    const obs::TraceSpan span("shard.exchange");
    const double t0 = util::wtime();
    load_residents(dm, gas);
    exchange_ghost_load();
    stats_.exchange_seconds += util::wtime() - t0;
  }
  {
    const obs::TraceSpan span("shard.tree");
    const double t0 = util::wtime();
    update_domains();
    stats_.domain_seconds += util::wtime() - t0;
  }
  ++stats_.evaluations;
}

void ShardEngine::run_pp(const PpParams& pp, std::span<float> ax,
                         std::span<float> ay, std::span<float> az) {
  const std::size_t n = n_dm_ + n_gas_;
  if (pp.poly == nullptr) {
    throw std::invalid_argument("ShardEngine::run_pp: poly is required");
  }
  if (ax.size() != n || ay.size() != n || az.size() != n) {
    throw std::invalid_argument(
        "ShardEngine::run_pp: output spans must cover the combined gather");
  }
  const obs::TraceSpan span("shard.pp");
  const double t0 = util::wtime();
  pp_accel_.assign(n, util::Vec3d{});
  const int count = layout_.count();
  const double r_cut = pp.poly->r_cut();
  const float box = pp.box;
  const float G = pp.G;
  const float eps2 = pp.softening * pp.softening;
  const float rcut2 = static_cast<float>(r_cut * r_cut);
  // Per-pair terms in float — bit-identical to GravityTraits::interact in
  // gravity/pp_short.cpp, and therefore independent of the shard count —
  // accumulated per particle in double, serially within a shard.  Shards
  // write disjoint resident slots, so the result is bit-identical for any
  // thread count.
  // shared: shards_ (one shard per iteration), pp_accel_/ax/ay/az (resident
  // shared: slots are owned by exactly one shard).
  opt_.pool->parallel_for_chunks(count, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t si = b; si < e; ++si) {
      Shard& s = shards_[static_cast<std::size_t>(si)];
      const double shard_t0 = util::wtime();
      const std::size_t nl = s.pos.size();
      s.acc.assign(3 * nl, 0.0);
      if (nl > 0 && s.dom && s.dom->ready()) {
        const std::size_t ndl = s.n_dm_local();
        s.lx.resize(nl);
        s.ly.resize(nl);
        s.lz.resize(nl);
        s.lmass.resize(nl);
        for (std::size_t j = 0; j < ndl; ++j) {
          s.lx[j] = s.dm_x[j];
          s.ly[j] = s.dm_y[j];
          s.lz[j] = s.dm_z[j];
          s.lmass[j] = s.dm_mass[j];
        }
        for (std::size_t j = 0; j < s.n_gas_local(); ++j) {
          s.lx[ndl + j] = s.gas_local.x[j];
          s.ly[ndl + j] = s.gas_local.y[j];
          s.lz[ndl + j] = s.gas_local.z[j];
          s.lmass[ndl + j] = s.gas_local.mass[j];
        }
        const std::size_t ndr = s.n_dm_res();
        const std::size_t gas_res_end = ndl + s.n_gas_res();
        const auto is_resident = [&](std::int32_t l) {
          const std::size_t u = static_cast<std::size_t>(l);
          return u < ndr || (u >= ndl && u < gas_res_end);
        };
        const tree::RcbTree& tr = s.dom->tree();
        const tree::Leaf* leaves = tr.leaves().data();
        const std::int32_t* order = tr.order().data();
        const auto pair_term = [&](std::int32_t i, std::int32_t j) {
          if (!is_resident(i) && !is_resident(j)) return;
          float dx = s.lx[static_cast<std::size_t>(i)] -
                     s.lx[static_cast<std::size_t>(j)];
          float dy = s.ly[static_cast<std::size_t>(i)] -
                     s.ly[static_cast<std::size_t>(j)];
          float dz = s.lz[static_cast<std::size_t>(i)] -
                     s.lz[static_cast<std::size_t>(j)];
          dx -= box * std::round(dx / box);
          dy -= box * std::round(dy / box);
          dz -= box * std::round(dz / box);
          const float r2 = dx * dx + dy * dy + dz * dz;
          if (r2 >= rcut2 || r2 <= 0.f) return;
          const float prof = pp.poly->short_profile(r2, eps2);
          const float fi = G * s.lmass[static_cast<std::size_t>(j)] * prof;
          const float fj = G * s.lmass[static_cast<std::size_t>(i)] * prof;
          double* ai = s.acc.data() + 3 * static_cast<std::size_t>(i);
          double* aj = s.acc.data() + 3 * static_cast<std::size_t>(j);
          ai[0] += -fi * dx;
          ai[1] += -fi * dy;
          ai[2] += -fi * dz;
          aj[0] += fj * dx;
          aj[1] += fj * dy;
          aj[2] += fj * dz;
        };
        s.dom->for_each_pair(r_cut, [&](const tree::LeafPair& lp) {
          const tree::Leaf& A = leaves[lp.a];
          const tree::Leaf& B = leaves[lp.b];
          if (lp.a == lp.b) {
            for (std::int32_t u = A.begin; u < A.end; ++u) {
              for (std::int32_t v = u + 1; v < A.end; ++v) {
                pair_term(order[u], order[v]);
              }
            }
          } else {
            for (std::int32_t u = A.begin; u < A.end; ++u) {
              for (std::int32_t v = B.begin; v < B.end; ++v) {
                pair_term(order[u], order[v]);
              }
            }
          }
        });
        // Scatter the resident sums: double for the parity suite, float for
        // the solver's kick path.
        for (std::size_t j = 0; j < ndr; ++j) {
          const std::size_t g = static_cast<std::size_t>(s.res_dm[j]);
          const double* a = s.acc.data() + 3 * j;
          pp_accel_[g] = {a[0], a[1], a[2]};
          ax[g] = static_cast<float>(a[0]);
          ay[g] = static_cast<float>(a[1]);
          az[g] = static_cast<float>(a[2]);
        }
        for (std::size_t j = 0; j < s.n_gas_res(); ++j) {
          const std::size_t g = static_cast<std::size_t>(s.res_gas[j]);
          const double* a = s.acc.data() + 3 * (ndl + j);
          pp_accel_[g] = {a[0], a[1], a[2]};
          ax[g] = static_cast<float>(a[0]);
          ay[g] = static_cast<float>(a[1]);
          az[g] = static_cast<float>(a[2]);
        }
      }
      s.pp_seconds += util::wtime() - shard_t0;
    }
  });
  stats_.pp_seconds += util::wtime() - t0;
}

void ShardEngine::refresh_ghost_fields(std::uint32_t round) {
  const int count = layout_.count();
  const std::uint32_t words = kRefreshWords[round];
  // Owners re-broadcast the fields the kernel just wrote, over the frozen
  // export plans.
  // shared: shards_ (one shard per iteration; only its own resident slots
  // shared: are read), transport_ (thread-safe send).
  opt_.pool->parallel_for_chunks(count, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t si = b; si < e; ++si) {
      Shard& s = shards_[static_cast<std::size_t>(si)];
      const core::ParticleSet& p = s.gas_local;
      for (const Shard::Export& ex : s.exports) {
        if (ex.gas.empty()) continue;
        Message m;
        m.kind = MsgKind::kGhostRefresh;
        m.from = s.rank;
        m.to = ex.to;
        m.tag = round;
        m.words = words;
        m.payload.reserve(words * ex.gas.size());
        for (const std::int32_t ji : ex.gas) {
          const std::size_t j = static_cast<std::size_t>(ji);
          switch (round) {
            case 0:
              m.payload.push_back(p.V[j]);
              break;
            case 1:
              for (int k = 0; k < core::crk_idx::kCount; ++k) {
                m.payload.push_back(p.crk[core::crk_idx::kCount * j +
                                          static_cast<std::size_t>(k)]);
              }
              break;
            default:
              m.payload.push_back(p.rho[j]);
              m.payload.push_back(p.P[j]);
              m.payload.push_back(p.cs[j]);
              break;
          }
        }
        transport_->send(std::move(m));
      }
    }
  });
  // Unpack positionally against the load-phase blocks (same senders, same
  // counts, same canonical order).
  // shared: shards_ (one shard per iteration), transport_ (per-rank
  // shared: receive).
  opt_.pool->parallel_for_chunks(count, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t si = b; si < e; ++si) {
      Shard& s = shards_[static_cast<std::size_t>(si)];
      core::ParticleSet& p = s.gas_local;
      std::size_t slot = s.n_gas_res();
      for (const Message& m : transport_->receive(s.rank)) {
        const std::size_t cnt = m.payload.size() / m.words;
        std::size_t w = 0;
        for (std::size_t k = 0; k < cnt; ++k, ++slot) {
          switch (round) {
            case 0:
              p.V[slot] = m.payload[w++];
              break;
            case 1:
              for (int c = 0; c < core::crk_idx::kCount; ++c) {
                p.crk[core::crk_idx::kCount * slot +
                      static_cast<std::size_t>(c)] = m.payload[w++];
              }
              break;
            default:
              p.rho[slot] = m.payload[w++];
              p.P[slot] = m.payload[w++];
              p.cs[slot] = m.payload[w++];
              break;
          }
        }
      }
      if (slot != p.size()) {
        throw std::logic_error(
            "ShardEngine: ghost refresh did not cover the halo — import "
            "blocks out of sync with the export plans");
      }
    }
  });
}

void ShardEngine::run_sph(core::ParticleSet& gas, xsycl::Queue& q,
                          const SphParams& sph) {
  const obs::TraceSpan span("shard.sph");
  const double t0 = util::wtime();
  const int count = layout_.count();
  // One tree walk per shard feeds all five kernels (the same economy as the
  // single-domain solver): leaf pairs with no gas on either side do zero
  // SPH work and are dropped at collection time.
  // shared: shards_ (one shard per iteration).
  opt_.pool->parallel_for_chunks(count, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t si = b; si < e; ++si) {
      Shard& s = shards_[static_cast<std::size_t>(si)];
      s.sph_pairs.clear();
      if (s.gas_local.size() == 0 || !s.dom || !s.dom->ready()) continue;
      const double cutoff = sph::support_cutoff(s.gas_local);
      const domain::SpeciesView gas_view = s.dom->second();
      s.dom->for_each_pair(cutoff, [&](const tree::LeafPair& lp) {
        if (gas_view.leaves[lp.a].count() == 0 ||
            gas_view.leaves[lp.b].count() == 0) {
          return;
        }
        s.sph_pairs.push_back(lp);
      });
    }
  });
  // Kernel chain: shards run one after another (each launch is internally
  // pool-parallel), with owner -> ghost field refreshes between dependent
  // kernels.
  const auto each_shard = [&](const auto& fn) {
    for (Shard& s : shards_) {
      if (s.gas_local.size() == 0 || !s.dom || !s.dom->ready()) continue;
      fn(s);
    }
  };
  each_shard([&](Shard& s) {
    sph::run_geometry(q, s.gas_local, s.dom->second(),
                      domain::PairSource(s.sph_pairs), sph.geometry);
  });
  refresh_ghost_fields(0);
  each_shard([&](Shard& s) {
    sph::run_corrections(q, s.gas_local, s.dom->second(),
                         domain::PairSource(s.sph_pairs), sph.corrections);
  });
  refresh_ghost_fields(1);
  each_shard([&](Shard& s) {
    sph::run_extras(q, s.gas_local, s.dom->second(),
                    domain::PairSource(s.sph_pairs), sph.extras);
  });
  refresh_ghost_fields(2);
  each_shard([&](Shard& s) {
    sph::run_acceleration(q, s.gas_local, s.dom->second(),
                          domain::PairSource(s.sph_pairs), sph.acceleration,
                          sph.accel_timer);
  });
  each_shard([&](Shard& s) {
    sph::run_energy(q, s.gas_local, s.dom->second(),
                    domain::PairSource(s.sph_pairs), sph.energy,
                    sph.energy_timer);
  });
  stats_.sph_seconds += util::wtime() - t0;
  {
    const obs::TraceSpan scatter_span("shard.scatter");
    const double t1 = util::wtime();
    scatter_gas(gas);
    stats_.exchange_seconds += util::wtime() - t1;
  }
}

void ShardEngine::scatter_gas(core::ParticleSet& gas) {
  const int count = layout_.count();
  // Shard -> solver boundary: every kernel-written field of each resident
  // goes back to the canonical set.  Residents partition the gas ids, so
  // the writes are disjoint and bit-identical for any thread count.
  // shared: gas (each global slot owned by exactly one shard), shards_
  // shared: (one shard per iteration, read-only).
  opt_.pool->parallel_for_chunks(count, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t si = b; si < e; ++si) {
      const Shard& s = shards_[static_cast<std::size_t>(si)];
      const core::ParticleSet& p = s.gas_local;
      for (std::size_t j = 0; j < s.n_gas_res(); ++j) {
        const std::size_t g = static_cast<std::size_t>(s.res_gas[j]) - n_dm_;
        gas.m0[g] = p.m0[j];
        gas.V[g] = p.V[j];
        gas.rho[g] = p.rho[j];
        gas.P[g] = p.P[j];
        gas.cs[g] = p.cs[j];
        gas.ax[g] = p.ax[j];
        gas.ay[g] = p.ay[j];
        gas.az[g] = p.az[j];
        gas.du[g] = p.du[j];
        gas.vsig[g] = p.vsig[j];
        for (int k = 0; k < core::crk_idx::kCount; ++k) {
          gas.crk[core::crk_idx::kCount * g + static_cast<std::size_t>(k)] =
              p.crk[core::crk_idx::kCount * j + static_cast<std::size_t>(k)];
        }
        for (int k = 0; k < core::mom_idx::kCount; ++k) {
          gas.moments[core::mom_idx::kCount * g + static_cast<std::size_t>(k)] =
              p.moments[core::mom_idx::kCount * j +
                        static_cast<std::size_t>(k)];
        }
        for (int k = 0; k < 9; ++k) {
          gas.dvel[9 * g + static_cast<std::size_t>(k)] =
              p.dvel[9 * j + static_cast<std::size_t>(k)];
        }
      }
    }
  });
}

void ShardEngine::evaluate(const core::ParticleSet& dm, core::ParticleSet& gas,
                           std::span<const util::Vec3d> pos, xsycl::Queue* q,
                           const SphParams* sph, const PpParams* pp,
                           std::span<float> ax, std::span<float> ay,
                           std::span<float> az) {
  prepare(dm, gas, pos);
  if (pp != nullptr) run_pp(*pp, ax, ay, az);
  if (sph != nullptr) {
    if (q == nullptr) {
      throw std::invalid_argument(
          "ShardEngine::evaluate: SPH kernels need a queue");
    }
    run_sph(gas, *q, *sph);
  }
}

ShardEngine::ShardView ShardEngine::shard_view(int shard) const {
  if (shard < 0 || shard >= layout_.count()) {
    throw std::out_of_range("ShardEngine::shard_view: bad shard index");
  }
  const Shard& s = shards_[static_cast<std::size_t>(shard)];
  ShardView v;
  v.res_dm = s.res_dm;
  v.res_gas = s.res_gas;
  v.gho_dm = s.gho_dm;
  v.gho_gas = s.gho_gas;
  v.gas_local = &s.gas_local;
  v.dom = s.dom.get();
  v.pp_seconds = s.pp_seconds;
  return v;
}

}  // namespace hacc::shard
