#pragma once

/// \file
/// The sharded force-evaluation engine: N in-process spatial domains over
/// the periodic box, each owning an `InteractionDomain` (tree, Verlet skin,
/// species views) over its resident particles plus a ghost halo imported
/// from neighboring shards through the `Transport` seam.
///
/// The engine is driven by the solver once per force evaluation, in three
/// phases that map one-to-one onto step-propagator stages:
///
///   prepare()  — particle migration (residency handover messages) when the
///                rebuild policy demands it, ghost-halo exchange, and the
///                per-shard domain updates.  Between migrations the export
///                plans are frozen, so a skin-triggered refresh updates the
///                ghost copies in place without changing any list shape.
///   run_pp()   — short-range polynomial gravity over each shard's leaf
///                pairs.  Per-pair terms are evaluated in FLOAT exactly as
///                the single-domain kernel does (gravity/pp_short.cpp), so
///                the term set is bitwise independent of the shard count;
///                per-particle sums accumulate in DOUBLE, which is what
///                makes the cross-shard-count force parity < 1e-10 instead
///                of float-reorder noise.
///   run_sph()  — the five CRK-SPH kernels per shard, with ghost field
///                refreshes through the transport between dependent kernels
///                (V after Geometry, CRK coefficients after Corrections,
///                rho/P/cs after Extras), then a resident-output scatter
///                back to the canonical particle set.
///
/// The canonical `core::ParticleSet`s stay authoritative: kick/drift and
/// checkpointing never see shards (the checkpoint layout IS the gathered
/// single-domain layout).  Residency is a pure function of position under
/// the default always-rebuild policy, so a restart reproduces a continuous
/// sharded run bit for bit at one thread.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/particles.hpp"
#include "domain/domain.hpp"
#include "gravity/poisson.hpp"
#include "shard/layout.hpp"
#include "shard/transport.hpp"
#include "sph/geometry.hpp"
#include "util/vec3.hpp"

namespace hacc::util {
class ThreadPool;
}  // namespace hacc::util

namespace hacc::xsycl {
class Queue;
}  // namespace hacc::xsycl

namespace hacc::shard {

/// Construction knobs.  Validated loudly (std::invalid_argument): box > 0,
/// count >= 1, ghost_factor >= 1, range >= 0, skin >= 0, leaf_size >= 1.
struct ShardOptions {
  double box = 1.0;
  int count = 1;
  /// Maximum interaction range the halo must cover: max over the enabled
  /// consumers of (SPH support at the smoothing-length clamp, PP cutoff).
  double range = 0.0;
  /// Halo safety factor (config key shard.ghost_factor): the ghost radius
  /// is ghost_factor * range + skin, so 1.0 is the exact halo and larger
  /// values trade copies for slack.
  double ghost_factor = 1.0;
  int leaf_size = 32;
  /// Verlet skin shared with the per-shard domains: residency and ghost
  /// plans re-form only when the max drift since the last migration exceeds
  /// skin / 2 (under the displacement policy), exactly like the tree.
  double skin = 0.0;
  domain::RebuildPolicy rebuild = domain::RebuildPolicy::kAlways;
  util::ThreadPool* pool = nullptr;  ///< shard-level parallelism (required)
};

/// Per-kernel SPH launch options, pre-resolved by the caller (the solver
/// threads its per-kernel communication variants through these).
struct SphParams {
  sph::HydroOptions geometry;
  sph::HydroOptions corrections;
  sph::HydroOptions extras;
  sph::HydroOptions acceleration;
  sph::HydroOptions energy;
  /// Timer names for the two-pass kernels ("upBarAc" / "upBarAcF" etc).
  const char* accel_timer = "upBarAc";
  const char* energy_timer = "upBarDu";
};

/// Short-range gravity parameters (mirrors gravity::PpOptions physics).
struct PpParams {
  const gravity::PolyShortForce* poly = nullptr;
  float box = 1.0f;
  float G = 1.0f;
  float softening = 0.0f;
};

/// Cumulative engine counters; the solver diffs them per step.
struct EngineStats {
  std::uint64_t evaluations = 0;
  std::uint64_t reshards = 0;       ///< residency (re)distributions
  std::uint64_t migrated = 0;       ///< particles that changed owner
  std::uint64_t ghost_copies = 0;   ///< halo slots filled across all loads
  std::uint64_t tree_builds = 0;    ///< per-shard domain rebuilds
  std::uint64_t tree_reuses = 0;    ///< per-shard Verlet-skin reuses
  double migrate_seconds = 0.0;     ///< residency + migration messaging
  double exchange_seconds = 0.0;    ///< ghost loads, refreshes, scatter
  double domain_seconds = 0.0;      ///< per-shard tree build/refresh
  double pp_seconds = 0.0;
  double sph_seconds = 0.0;
};

class ShardEngine {
 public:
  /// A null `transport` means an owned InProcTransport of `opt.count`
  /// endpoints; an external transport must have exactly that many.
  explicit ShardEngine(const ShardOptions& opt,
                       std::unique_ptr<Transport> transport = nullptr);
  ~ShardEngine();

  /// Phase 1: migration + ghost exchange + per-shard domain updates for the
  /// current canonical state.  `pos` is the combined dm-then-gas position
  /// gather (global ids index it); `dm`/`gas` supply the field data.
  void prepare(const core::ParticleSet& dm, const core::ParticleSet& gas,
               std::span<const util::Vec3d> pos);

  /// Phase 2: short-range gravity.  Writes the double-accumulated sums as
  /// floats into ax/ay/az (combined global indexing; every slot is some
  /// shard's resident, so the arrays are fully covered) and keeps the
  /// double sums readable via pp_accel() for the parity suite.
  void run_pp(const PpParams& pp, std::span<float> ax, std::span<float> ay,
              std::span<float> az);

  /// Phase 3: the five SPH kernels + ghost refreshes, then the resident
  /// scatter of every kernel-written field back into `gas`.
  void run_sph(core::ParticleSet& gas, xsycl::Queue& q, const SphParams& sph);

  /// prepare + optional run_pp + optional run_sph (tools, benches, tests).
  void evaluate(const core::ParticleSet& dm, core::ParticleSet& gas,
                std::span<const util::Vec3d> pos, xsycl::Queue* q,
                const SphParams* sph, const PpParams* pp, std::span<float> ax,
                std::span<float> ay, std::span<float> az);

  const ShardLayout& layout() const { return layout_; }
  const ShardOptions& options() const { return opt_; }
  const EngineStats& stats() const { return stats_; }
  TransportStats transport_stats() const { return transport_->stats(); }
  double ghost_radius() const { return ghost_radius_; }

  /// Last run_pp() double sums, combined global indexing (parity suite).
  const std::vector<util::Vec3d>& pp_accel() const { return pp_accel_; }

  /// Test/diagnostic window into one shard's residency and halo.
  struct ShardView {
    std::span<const std::int64_t> res_dm;   ///< global combined ids
    std::span<const std::int64_t> res_gas;  ///< global combined ids
    std::span<const std::int64_t> gho_dm;   ///< global combined ids
    std::span<const std::int64_t> gho_gas;  ///< global combined ids
    const core::ParticleSet* gas_local;     ///< residents then ghosts
    const domain::InteractionDomain* dom;
    double pp_seconds = 0.0;  ///< this shard's accumulated P-P walk time
  };
  ShardView shard_view(int shard) const;

 private:
  struct Shard;

  bool reshard_needed(std::span<const util::Vec3d> pos) const;
  void reshard(std::span<const util::Vec3d> pos);
  void plan_ghosts(std::span<const util::Vec3d> pos);
  void load_residents(const core::ParticleSet& dm, const core::ParticleSet& gas);
  void exchange_ghost_load();
  void update_domains();
  void refresh_ghost_fields(std::uint32_t round);
  void scatter_gas(core::ParticleSet& gas);

  ShardOptions opt_;
  ShardLayout layout_;
  double ghost_radius_ = 0.0;
  std::unique_ptr<Transport> transport_;
  std::vector<Shard> shards_;
  EngineStats stats_;
  std::size_t n_dm_ = 0, n_gas_ = 0;
  bool assigned_ = false;
  /// Positions at the last reshard (displacement policy drift reference).
  std::vector<util::Vec3d> ref_pos_;
  std::vector<util::Vec3d> pp_accel_;
};

}  // namespace hacc::shard
