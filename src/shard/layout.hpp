#pragma once

/// \file
/// Spatial decomposition of the periodic box into N contiguous sub-domains
/// (shards).  The layout is a regular nx × ny × nz grid of axis-aligned
/// cells chosen near-cubic for the shard count, mirroring the rank
/// decomposition of the source paper's solver: every particle position in
/// [0, box) has exactly one owner cell, and ghost-halo membership is a
/// minimum-image point-to-cell distance test — faces, edges, and box
/// corners (3-way periodic wrap) fall out of the same formula.
///
/// All geometry here is pure and deterministic: ownership of a particle
/// exactly on a cell boundary plane goes to the higher cell (floor of the
/// scaled coordinate), so residency is a total function of position.

#include <string>
#include <vector>

#include "util/vec3.hpp"

namespace hacc::shard {

/// The shard grid.  Construct through make(); throws std::invalid_argument
/// on box <= 0 or count < 1.
class ShardLayout {
 public:
  /// Factors `count` into near-cubic grid dimensions (8 -> 2x2x2,
  /// 4 -> 2x2x1, 2 -> 2x1x1, primes -> p x 1 x 1) and builds the layout.
  static ShardLayout make(double box, int count);

  int count() const { return nx_ * ny_ * nz_; }
  double box() const { return box_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }

  /// The owner cell of a position.  Coordinates are wrapped into [0, box)
  /// first, so any finite position has an owner; a particle exactly on a
  /// boundary plane belongs to the cell whose low face it sits on.
  int owner_of(const util::Vec3d& p) const;

  /// Low/high corner of a cell (code length units).
  util::Vec3d lo(int cell) const;
  util::Vec3d hi(int cell) const;

  /// Minimum-image distance from a point to a cell's closed axis-aligned
  /// region: zero inside, else the periodic point-to-interval distance
  /// combined per axis.  This is THE ghost-membership predicate: a particle
  /// is a ghost of `cell` when the distance is <= the ghost radius.
  double distance_to(int cell, const util::Vec3d& p) const;

  /// Cells other than `cell` whose region comes within `radius` of it —
  /// the neighbor set a shard exchanges ghosts with.  With a radius larger
  /// than a cell extent this degrades gracefully to "all other cells".
  std::vector<int> neighbors_within(int cell, double radius) const;

  /// "nx x ny x nz" — log/debug spelling.
  std::string describe() const;

 private:
  ShardLayout(double box, int nx, int ny, int nz);

  double box_ = 1.0;
  int nx_ = 1, ny_ = 1, nz_ = 1;
};

}  // namespace hacc::shard
