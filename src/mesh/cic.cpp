#include "mesh/cic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/trace.hpp"

namespace hacc::mesh {

CicStencil cic_stencil(const util::Vec3d& pos, int n, double box) {
  CicStencil s;
  const double cell = box / n;
  for (int a = 0; a < 3; ++a) {
    // Particle position in cell units, relative to cell centers.
    const double u = pos[a] / cell - 0.5;
    s.i0[a] = cic_axis_i0(pos[a], cell);
    s.w0[a] = 1.0 - (u - s.i0[a]);
  }
  return s;
}

namespace {

inline void deposit_one(GridD& grid, const CicStencil& s, double m) {
  for (int dx = 0; dx < 2; ++dx) {
    const double wx = dx == 0 ? s.w0[0] : 1.0 - s.w0[0];
    for (int dy = 0; dy < 2; ++dy) {
      const double wy = dy == 0 ? s.w0[1] : 1.0 - s.w0[1];
      for (int dz = 0; dz < 2; ++dz) {
        const double wz = dz == 0 ? s.w0[2] : 1.0 - s.w0[2];
        grid.at_wrapped(s.i0[0] + dx, s.i0[1] + dy, s.i0[2] + dz) += m * wx * wy * wz;
      }
    }
  }
}

}  // namespace

void cic_deposit(GridD& grid, std::span<const util::Vec3d> pos,
                 std::span<const double> mass, double box) {
  const int n = grid.n();
  for (std::size_t p = 0; p < pos.size(); ++p) {
    deposit_one(grid, cic_stencil(pos[p], n, box), mass[p]);
  }
}

CicDepositor::CicDepositor(util::ThreadPool& pool) : pool_(&pool) {}

void CicDepositor::deposit(GridD& grid, std::span<const util::Vec3d> pos,
                           std::span<const double> mass, double box) {
  const int n = grid.n();
  const std::size_t np = pos.size();
  // The slab machinery only pays off with enough work per call.
  if (n < 4 || np < 2048) {
    cic_deposit(grid, pos, mass, box);
    return;
  }
  const obs::TraceSpan deposit_span("mesh.cic_deposit");

  // Even number of single-row x-slabs (an odd grid folds its last row into
  // the preceding slab).  A particle bucketed in slab s touches rows s and
  // s+1 only (its stencil spans two adjacent rows), so slabs two apart never
  // share rows and each parity phase scatters race-free.  The last slab's
  // upper row wraps to row 0, owned by slab 0 — a different parity because
  // the slab count is even.  The layout depends only on the grid, never on
  // the pool, so the summation order — and the result, bit for bit — is
  // independent of the thread count.
  const int n_slabs = n - (n & 1);

  slab_of_.resize(np);
  order_.resize(np);
  const double cell = box / n;
  // shared: slab_of_ (one element per particle index).
  pool_->parallel_for_chunks(
      static_cast<std::int64_t>(np), 4096, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t p = b; p < e; ++p) {
          // Only the x-axis cell index decides the slab; the full stencil is
          // computed once, in the scatter phase.
          const int i0 = cic_axis_i0(pos[p].x, cell);
          slab_of_[p] = static_cast<std::uint32_t>(std::min(grid.wrap(i0), n_slabs - 1));
        }
      });

  // Stable counting sort of particle indices by slab.
  offsets_.assign(static_cast<std::size_t>(n_slabs) + 1, 0);
  for (std::size_t p = 0; p < np; ++p) ++offsets_[slab_of_[p] + 1];
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t p = 0; p < np; ++p) {
    order_[cursor[slab_of_[p]]++] = static_cast<std::uint32_t>(p);
  }

  const auto scatter_phase = [&](int parity) {
    const std::int64_t count = (n_slabs - parity + 1) / 2;
    // shared: grid (same-parity slabs touch disjoint stencil rows).
    pool_->parallel_for_chunks(count, 1, [&](std::int64_t b, std::int64_t e) {
      // Per-chunk span: the scatter shows up on every worker lane it ran on.
      const obs::TraceSpan chunk_span("mesh.cic_scatter");
      for (std::int64_t si = b; si < e; ++si) {
        const int s = static_cast<int>(2 * si) + parity;
        for (std::uint32_t u = offsets_[s]; u < offsets_[s + 1]; ++u) {
          const std::uint32_t p = order_[u];
          deposit_one(grid, cic_stencil(pos[p], n, box), mass[p]);
        }
      }
    });
  };
  scatter_phase(0);
  scatter_phase(1);
}

void cic_deposit(GridD& grid, std::span<const util::Vec3d> pos,
                 std::span<const double> mass, double box, util::ThreadPool& pool) {
  CicDepositor(pool).deposit(grid, pos, mass, box);
}

double cic_interpolate(const GridD& grid, const util::Vec3d& pos, double box) {
  const int n = grid.n();
  const CicStencil s = cic_stencil(pos, n, box);
  double value = 0.0;
  for (int dx = 0; dx < 2; ++dx) {
    const double wx = dx == 0 ? s.w0[0] : 1.0 - s.w0[0];
    for (int dy = 0; dy < 2; ++dy) {
      const double wy = dy == 0 ? s.w0[1] : 1.0 - s.w0[1];
      for (int dz = 0; dz < 2; ++dz) {
        const double wz = dz == 0 ? s.w0[2] : 1.0 - s.w0[2];
        value += grid.at_wrapped(s.i0[0] + dx, s.i0[1] + dy, s.i0[2] + dz) * wx * wy * wz;
      }
    }
  }
  return value;
}

util::Vec3d cic_interpolate3(const GridD& gx, const GridD& gy, const GridD& gz,
                             const util::Vec3d& pos, double box) {
  return {cic_interpolate(gx, pos, box), cic_interpolate(gy, pos, box),
          cic_interpolate(gz, pos, box)};
}

}  // namespace hacc::mesh
