#include "mesh/cic.hpp"

#include <cmath>

namespace hacc::mesh {

namespace {

struct CicStencil {
  int i0[3];     // lower cell index (wrapped later)
  double w0[3];  // weight of the lower cell per axis
};

CicStencil stencil_for(const util::Vec3d& pos, int n, double box) {
  CicStencil s;
  const double cell = box / n;
  for (int a = 0; a < 3; ++a) {
    // Particle position in cell units, relative to cell centers.
    const double u = pos[a] / cell - 0.5;
    const double fl = std::floor(u);
    s.i0[a] = static_cast<int>(fl);
    s.w0[a] = 1.0 - (u - fl);
  }
  return s;
}

}  // namespace

void cic_deposit(GridD& grid, std::span<const util::Vec3d> pos,
                 std::span<const double> mass, double box) {
  const int n = grid.n();
  for (std::size_t p = 0; p < pos.size(); ++p) {
    const CicStencil s = stencil_for(pos[p], n, box);
    for (int dx = 0; dx < 2; ++dx) {
      const double wx = dx == 0 ? s.w0[0] : 1.0 - s.w0[0];
      for (int dy = 0; dy < 2; ++dy) {
        const double wy = dy == 0 ? s.w0[1] : 1.0 - s.w0[1];
        for (int dz = 0; dz < 2; ++dz) {
          const double wz = dz == 0 ? s.w0[2] : 1.0 - s.w0[2];
          grid.at_wrapped(s.i0[0] + dx, s.i0[1] + dy, s.i0[2] + dz) +=
              mass[p] * wx * wy * wz;
        }
      }
    }
  }
}

double cic_interpolate(const GridD& grid, const util::Vec3d& pos, double box) {
  const int n = grid.n();
  const CicStencil s = stencil_for(pos, n, box);
  double value = 0.0;
  for (int dx = 0; dx < 2; ++dx) {
    const double wx = dx == 0 ? s.w0[0] : 1.0 - s.w0[0];
    for (int dy = 0; dy < 2; ++dy) {
      const double wy = dy == 0 ? s.w0[1] : 1.0 - s.w0[1];
      for (int dz = 0; dz < 2; ++dz) {
        const double wz = dz == 0 ? s.w0[2] : 1.0 - s.w0[2];
        value += grid.at_wrapped(s.i0[0] + dx, s.i0[1] + dy, s.i0[2] + dz) * wx * wy * wz;
      }
    }
  }
  return value;
}

util::Vec3d cic_interpolate3(const GridD& gx, const GridD& gy, const GridD& gz,
                             const util::Vec3d& pos, double box) {
  return {cic_interpolate(gx, pos, box), cic_interpolate(gy, pos, box),
          cic_interpolate(gz, pos, box)};
}

}  // namespace hacc::mesh
