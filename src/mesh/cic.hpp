#pragma once

// Cloud-In-Cell deposit and interpolation on a periodic grid — the mass
// assignment scheme of HACC's particle-mesh long-range solver.

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "mesh/grid.hpp"
#include "util/thread_pool.hpp"
#include "util/vec3.hpp"

namespace hacc::mesh {

// The 2x2x2 CIC cloud of a particle: lower cell index per axis (may be
// negative or >= n; wrap before use) and the weight of the lower cell.
struct CicStencil {
  int i0[3];     // lower cell index (wrapped later)
  double w0[3];  // weight of the lower cell per axis
};

// Lower cell index of the CIC cloud along one axis (unwrapped).  The slab
// bucketing of CicDepositor and cic_stencil must agree bit for bit on this
// rounding — both go through here.
inline int cic_axis_i0(double coord, double cell) {
  return static_cast<int>(std::floor(coord / cell - 0.5));
}

// Stencil of a particle at `pos` (box units [0, box)) on an n-cell grid.
CicStencil cic_stencil(const util::Vec3d& pos, int n, double box);

// Deposits `mass[i]` at comoving position pos[i] (box units [0, box)) onto
// the n^3 grid; the grid accumulates mass (not density).
void cic_deposit(GridD& grid, std::span<const util::Vec3d> pos,
                 std::span<const double> mass, double box);

// Threaded deposit through a slab-partitioned scatter.  Particles are
// bucketed by the x-slab owning their stencil, then slabs are processed in
// two phases (even slabs, then odd slabs): a slab's stencil rows never
// overlap those of the next-but-one slab, so every phase writes disjoint
// grid rows with no atomics.  The result is deterministic for a fixed
// particle order regardless of thread count, and differs from the serial
// deposit only by floating-point summation order.
//
// Thread-compatible, not thread-safe: deposit() parallelizes internally over
// the pool but mutates the persistent bucketing scratch, so concurrent
// deposit() calls on one CicDepositor are a race — give each driver thread
// its own instance (docs/CONCURRENCY.md).
class CicDepositor {
 public:
  explicit CicDepositor(util::ThreadPool& pool = util::ThreadPool::global());

  // Accumulates into `grid` exactly like the serial cic_deposit.
  void deposit(GridD& grid, std::span<const util::Vec3d> pos,
               std::span<const double> mass, double box);

 private:
  util::ThreadPool* pool_;
  // Persistent bucketing scratch (hoisted out of the per-call hot path).
  std::vector<std::uint32_t> slab_of_;
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> offsets_;
};

// Convenience overload: one-shot threaded deposit.
void cic_deposit(GridD& grid, std::span<const util::Vec3d> pos,
                 std::span<const double> mass, double box,
                 util::ThreadPool& pool);

// Trilinear (CIC) interpolation of a grid field at one position.
double cic_interpolate(const GridD& grid, const util::Vec3d& pos, double box);

// Vector-field interpolation convenience: three grids -> Vec3 per particle.
util::Vec3d cic_interpolate3(const GridD& gx, const GridD& gy, const GridD& gz,
                             const util::Vec3d& pos, double box);

}  // namespace hacc::mesh
