#pragma once

// Cloud-In-Cell deposit and interpolation on a periodic grid — the mass
// assignment scheme of HACC's particle-mesh long-range solver.

#include <span>

#include "mesh/grid.hpp"
#include "util/vec3.hpp"

namespace hacc::mesh {

// Deposits `mass[i]` at comoving position pos[i] (box units [0, box)) onto
// the n^3 grid; the grid accumulates mass (not density).
void cic_deposit(GridD& grid, std::span<const util::Vec3d> pos,
                 std::span<const double> mass, double box);

// Trilinear (CIC) interpolation of a grid field at one position.
double cic_interpolate(const GridD& grid, const util::Vec3d& pos, double box);

// Vector-field interpolation convenience: three grids -> Vec3 per particle.
util::Vec3d cic_interpolate3(const GridD& gx, const GridD& gy, const GridD& gz,
                             const util::Vec3d& pos, double box);

}  // namespace hacc::mesh
