#pragma once

// Periodic n^3 scalar grid used by the particle-mesh gravity solver.

#include <cassert>
#include <cstddef>
#include <vector>

namespace hacc::mesh {

template <typename T>
class Grid3 {
 public:
  Grid3() = default;
  explicit Grid3(int n, T fill = T{}) : n_(n), data_(static_cast<std::size_t>(n) * n * n, fill) {}

  int n() const { return n_; }
  std::size_t size() const { return data_.size(); }

  // Periodic wrap of a (possibly negative) index.
  int wrap(int i) const {
    i %= n_;
    return i < 0 ? i + n_ : i;
  }

  std::size_t index(int ix, int iy, int iz) const {
    return (static_cast<std::size_t>(ix) * n_ + iy) * n_ + iz;
  }
  std::size_t index_wrapped(int ix, int iy, int iz) const {
    return index(wrap(ix), wrap(iy), wrap(iz));
  }

  T& at(int ix, int iy, int iz) { return data_[index(ix, iy, iz)]; }
  const T& at(int ix, int iy, int iz) const { return data_[index(ix, iy, iz)]; }

  T& at_wrapped(int ix, int iy, int iz) { return data_[index_wrapped(ix, iy, iz)]; }
  const T& at_wrapped(int ix, int iy, int iz) const {
    return data_[index_wrapped(ix, iy, iz)];
  }

  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }

  void fill(T v) { data_.assign(data_.size(), v); }

  T sum() const {
    T s{};
    for (const T& v : data_) s += v;
    return s;
  }

 private:
  int n_ = 0;
  std::vector<T> data_;
};

using GridD = Grid3<double>;

}  // namespace hacc::mesh
