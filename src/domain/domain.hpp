#pragma once

/// \file
/// The interaction-domain subsystem: single owner of all neighbor machinery
/// on the force hot path.  One `InteractionDomain` performs at most ONE tree
/// build per force evaluation over the combined (dark matter + baryon)
/// particle gather, exposes species-filtered views of that shared tree so
/// the five SPH kernels and the short-range gravity kernel consume the same
/// spatial decomposition, and supports Verlet-skin reuse across force
/// evaluations: with `rebuild = displacement` the tree (and its gather
/// permutation) is kept while no particle has drifted more than `skin / 2`
/// since the last build — drifted positions are simply re-binned into the
/// existing leaves by refreshing every AABB, which keeps pair enumeration
/// (and therefore forces) exact.
///
/// Pair enumeration is a streamed visitor walk: `PairSource` feeds kernel
/// launches in leaf-pair batches straight out of it, so a single-consumer
/// hot path (short-range gravity) materializes nothing.  Multi-consumer
/// paths (the five SPH kernels) instead collect ONE walk into a reusable
/// scratch rather than re-traversing per kernel — see Solver::compute_forces.
/// `interacting_pairs()` remains as a thin materializing wrapper for tests
/// and the FMM interaction builder.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tree/rcb.hpp"
#include "util/vec3.hpp"

namespace hacc::util {
class ThreadPool;
}  // namespace hacc::util

namespace hacc::domain {

/// When the shared tree is rebuilt:
///   - `kAlways`       — a fresh tree per force evaluation (the historical
///                       behavior; the safe default).
///   - `kDisplacement` — classic Verlet-skin reuse: rebuild only when the
///                       max minimum-image drift since the last build
///                       exceeds `skin / 2`; otherwise re-bin in place.
enum class RebuildPolicy { kAlways, kDisplacement };

/// The config-key spelling of a policy ("always" | "displacement").
const char* to_string(RebuildPolicy policy);

/// Parses "always" | "displacement"; returns false (out untouched) for
/// unknown names — same contract as core::parse_gravity_backend.
bool parse_rebuild_policy(const std::string& name, RebuildPolicy& out);

/// Construction knobs.  Validated loudly: the constructor throws
/// std::invalid_argument on box <= 0, leaf_size < 1, or skin < 0.
struct DomainOptions {
  double box = 1.0;    ///< periodic box (code length units)
  int leaf_size = 32;  ///< RCB leaf capacity
  double skin = 0.0;   ///< Verlet skin; reuse while max drift <= skin / 2
  RebuildPolicy rebuild = RebuildPolicy::kAlways;
  /// When set, tree builds/refreshes run level-parallel on this pool
  /// (bit-identical to the serial path for any thread count — see
  /// tree/rcb.hpp).  Must outlive the domain.
  util::ThreadPool* pool = nullptr;
};

/// Lifetime counters, exposed so solvers can report per-step tree work.
struct DomainStats {
  std::uint64_t builds = 0;    ///< full tree (re)builds
  std::uint64_t reuses = 0;    ///< refresh-only updates (Verlet reuse)
  double last_max_drift = 0.0; ///< max drift measured at the last update
};

/// A species-filtered window onto the shared tree: per-leaf slot sub-ranges
/// plus the slot -> species-local particle index permutation.  These are
/// exactly the two arrays the half-warp pair kernels consume, so a view (not
/// a tree) is what every kernel runner takes.  Implicitly constructible from
/// a bare RcbTree for the single-species / tooling paths.
struct SpeciesView {
  const tree::Leaf* leaves = nullptr;
  const std::int32_t* order = nullptr;
  std::size_t n_leaves = 0;

  SpeciesView() = default;
  SpeciesView(const tree::Leaf* l, const std::int32_t* o, std::size_t n)
      : leaves(l), order(o), n_leaves(n) {}
  // NOLINTNEXTLINE(google-explicit-constructor): whole-tree view on purpose.
  SpeciesView(const tree::RcbTree& t)
      : leaves(t.leaves().data()),
        order(t.order().data()),
        n_leaves(t.leaves().size()) {}
};

class InteractionDomain;

/// One kernel launch's worth of leaf pairs: either an already materialized
/// list (tests, FMM near lists) or a streamed dual-tree walk delivered in
/// fixed-size batches.  Kernel runners iterate `for_each_batch` and submit
/// one launch per batch, so the streamed path never holds more than `batch`
/// pairs at once.
class PairSource {
 public:
  static constexpr std::size_t kDefaultBatch = 4096;

  // NOLINTNEXTLINE(google-explicit-constructor): call-site compatibility.
  PairSource(std::span<const tree::LeafPair> pairs) : pairs_(pairs) {}
  // NOLINTNEXTLINE(google-explicit-constructor): call-site compatibility.
  PairSource(const std::vector<tree::LeafPair>& pairs) : pairs_(pairs) {}

  /// A streamed source over the domain's shared tree at the given cutoff.
  static PairSource streamed(const InteractionDomain& dom, double cutoff,
                             std::size_t batch = kDefaultBatch);

  /// Invokes f(std::span<const tree::LeafPair>) for each non-empty batch.
  template <typename F>
  void for_each_batch(F&& f) const;  // defined below InteractionDomain

 private:
  PairSource() = default;

  std::span<const tree::LeafPair> pairs_{};
  const InteractionDomain* stream_ = nullptr;
  double cutoff_ = 0.0;
  std::size_t batch_ = kDefaultBatch;
};

/// The shared per-step neighbor structure.  Lifecycle: construct once with
/// the box/leaf/skin knobs, then call update() exactly once per force
/// evaluation with the combined position gather; views and pair sources stay
/// valid until the next update().
class InteractionDomain {
 public:
  explicit InteractionDomain(const DomainOptions& opt);

  /// Ensures the tree covers `pos` (species A occupying indices
  /// [0, n_first), species B the rest).  Rebuilds when the policy demands it
  /// — always, on any shape change, when the max minimum-image drift since
  /// the last build exceeds skin / 2, or when a particle crossed the
  /// periodic boundary (a wrapped raw coordinate would inflate its
  /// re-binned leaf AABB to nearly the whole box) — and otherwise re-bins
  /// the drifted positions into the existing leaves.  Returns true when a
  /// full rebuild happened.
  bool update(std::span<const util::Vec3d> pos, std::size_t n_first = 0);

  /// True once update() has installed a tree.
  bool ready() const { return tree_ != nullptr; }

  /// The shared tree (throws std::logic_error before the first update()).
  const tree::RcbTree& tree() const;

  const DomainOptions& options() const { return opt_; }
  const DomainStats& stats() const { return stats_; }
  std::size_t size() const { return n_; }
  std::size_t n_first() const { return n_first_; }

  /// Both species, original (combined-gather) indices.
  SpeciesView all() const;
  /// Species A ([0, n_first)), species-local indices.
  SpeciesView first() const;
  /// Species B ([n_first, n)), species-local indices.
  SpeciesView second() const;

  /// Streamed canonical leaf-pair traversal at `cutoff` (exact,
  /// duplicate-free; see RcbTree::for_each_pair).
  template <typename Visitor>
  void for_each_pair(double cutoff, Visitor&& visit) const {
    tree().for_each_pair(cutoff, visit);
  }

  /// Streamed pair source for kernel launches at `cutoff`.
  PairSource pairs(double cutoff,
                   std::size_t batch = PairSource::kDefaultBatch) const {
    return PairSource::streamed(*this, cutoff, batch);
  }

  /// Materialized pair list — thin wrapper over the streamed walk, kept for
  /// tests and the FMM interaction builder.
  std::vector<tree::LeafPair> interacting_pairs(double cutoff) const;

 private:
  struct Drift {
    double max = 0.0;     // max minimum-image displacement since last build
    bool wrapped = false; // some particle crossed the periodic boundary
  };

  void rebuild(std::span<const util::Vec3d> pos, std::size_t n_first);
  // Scans for the max minimum-image drift vs ref_pos_, returning early once
  // the verdict is forced (a wrap, or the drift exceeding `threshold`) — so
  // Drift::max is a lower bound when the early exit fires.
  Drift measure_drift(std::span<const util::Vec3d> pos, double threshold) const;
  const tree::RcbTree& checked_tree() const;

  DomainOptions opt_;
  DomainStats stats_;
  std::unique_ptr<tree::RcbTree> tree_;
  std::size_t n_ = 0;
  std::size_t n_first_ = 0;
  // Positions at the last rebuild; kept only under the displacement policy
  // (kAlways never measures drift).
  std::vector<util::Vec3d> ref_pos_;
  // Species partition of the tree order: within every leaf, species-A slots
  // precede species-B slots.  order_all_ keeps combined indices;
  // order_local_ maps each slot to its species-local index.
  std::vector<std::int32_t> order_all_;
  std::vector<std::int32_t> order_local_;
  std::vector<tree::Leaf> leaves_first_;
  std::vector<tree::Leaf> leaves_second_;
};

template <typename F>
void PairSource::for_each_batch(F&& f) const {
  if (stream_ == nullptr) {
    if (!pairs_.empty()) f(pairs_);
    return;
  }
  std::vector<tree::LeafPair> buf;
  buf.reserve(batch_);
  stream_->for_each_pair(cutoff_, [&](const tree::LeafPair& lp) {
    buf.push_back(lp);
    if (buf.size() == batch_) {
      f(std::span<const tree::LeafPair>(buf));
      buf.clear();
    }
  });
  if (!buf.empty()) f(std::span<const tree::LeafPair>(buf));
}

}  // namespace hacc::domain
