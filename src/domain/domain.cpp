#include "domain/domain.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"

namespace hacc::domain {

using util::Vec3d;

const char* to_string(RebuildPolicy policy) {
  switch (policy) {
    case RebuildPolicy::kAlways:
      return "always";
    case RebuildPolicy::kDisplacement:
      return "displacement";
  }
  return "always";
}

bool parse_rebuild_policy(const std::string& name, RebuildPolicy& out) {
  if (name == "always") {
    out = RebuildPolicy::kAlways;
  } else if (name == "displacement") {
    out = RebuildPolicy::kDisplacement;
  } else {
    return false;
  }
  return true;
}

PairSource PairSource::streamed(const InteractionDomain& dom, double cutoff,
                                std::size_t batch) {
  PairSource src;
  src.stream_ = &dom;
  src.cutoff_ = cutoff;
  src.batch_ = std::max<std::size_t>(1, batch);
  return src;
}

InteractionDomain::InteractionDomain(const DomainOptions& opt) : opt_(opt) {
  if (!(opt_.box > 0.0)) {
    throw std::invalid_argument(
        "InteractionDomain: box must be > 0 (got " + std::to_string(opt_.box) +
        ")");
  }
  if (opt_.leaf_size < 1) {
    throw std::invalid_argument(
        "InteractionDomain: leaf_size must be >= 1 (got " +
        std::to_string(opt_.leaf_size) + ")");
  }
  if (!(opt_.skin >= 0.0)) {
    throw std::invalid_argument(
        "InteractionDomain: skin must be >= 0 (got " +
        std::to_string(opt_.skin) + ")");
  }
}

const tree::RcbTree& InteractionDomain::checked_tree() const {
  if (tree_ == nullptr) {
    throw std::logic_error(
        "InteractionDomain: update() must install a tree before it is used");
  }
  return *tree_;
}

const tree::RcbTree& InteractionDomain::tree() const { return checked_tree(); }

bool InteractionDomain::update(std::span<const Vec3d> pos,
                               std::size_t n_first) {
  if (n_first > pos.size()) {
    throw std::invalid_argument(
        "InteractionDomain::update(): n_first exceeds the particle count");
  }
  const bool shape_changed =
      tree_ == nullptr || pos.size() != n_ || n_first != n_first_;
  if (shape_changed || opt_.rebuild == RebuildPolicy::kAlways) {
    stats_.last_max_drift = 0.0;
    rebuild(pos, n_first);
    return true;
  }
  const Drift drift = measure_drift(pos, 0.5 * opt_.skin);
  stats_.last_max_drift = drift.max;
  // A particle that crossed the periodic boundary sits a near-box raw
  // coordinate away from its leaf mates: re-binned AABBs are computed from
  // raw coordinates, so reuse would inflate that leaf's box to almost the
  // whole domain and blow up the pair walk.  Wraps are rare — rebuild.
  if (drift.wrapped || drift.max > 0.5 * opt_.skin) {
    rebuild(pos, n_first);
    return true;
  }
  // Re-bin: the permutation and topology stand, the AABBs track the drifted
  // positions so pair enumeration stays exact.  The species views carry
  // copies of the leaf boxes — sync them so every view sees the refreshed
  // AABBs.
  const obs::TraceSpan span("domain.refresh");
  tree_->refresh(pos);
  const auto& leaves = tree_->leaves();
  for (std::size_t l = 0; l < leaves.size(); ++l) {
    leaves_first_[l].lo = leaves[l].lo;
    leaves_first_[l].hi = leaves[l].hi;
    leaves_second_[l].lo = leaves[l].lo;
    leaves_second_[l].hi = leaves[l].hi;
  }
  ++stats_.reuses;
  return false;
}

void InteractionDomain::rebuild(std::span<const Vec3d> pos,
                                std::size_t n_first) {
  const obs::TraceSpan span("domain.build");
  tree_ = opt_.pool != nullptr
              ? std::make_unique<tree::RcbTree>(pos, opt_.box, opt_.leaf_size,
                                                *opt_.pool)
              : std::make_unique<tree::RcbTree>(pos, opt_.box, opt_.leaf_size);
  n_ = pos.size();
  n_first_ = n_first;
  if (opt_.rebuild == RebuildPolicy::kDisplacement) {
    ref_pos_.assign(pos.begin(), pos.end());
  }

  const auto& leaves = tree_->leaves();
  order_all_ = tree_->order();
  order_local_.resize(order_all_.size());
  leaves_first_ = leaves;
  leaves_second_ = leaves;
  const auto split = static_cast<std::int32_t>(n_first);
  for (std::size_t l = 0; l < leaves.size(); ++l) {
    const auto begin = order_all_.begin() + leaves[l].begin;
    const auto end = order_all_.begin() + leaves[l].end;
    const auto mid = std::stable_partition(
        begin, end, [split](std::int32_t i) { return i < split; });
    const auto mid_slot = static_cast<std::int32_t>(mid - order_all_.begin());
    leaves_first_[l].end = mid_slot;
    leaves_second_[l].begin = mid_slot;
  }
  for (std::size_t s = 0; s < order_all_.size(); ++s) {
    const std::int32_t i = order_all_[s];
    order_local_[s] = i < split ? i : i - split;
  }
  ++stats_.builds;
}

InteractionDomain::Drift InteractionDomain::measure_drift(
    std::span<const Vec3d> pos, double threshold) const {
  Drift drift;
  const double t2 = threshold * threshold;
  double d2max = 0.0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    double d2 = 0.0;
    for (int a = 0; a < 3; ++a) {
      double d = pos[i][a] - ref_pos_[i][a];
      if (std::fabs(d) > 0.5 * opt_.box) drift.wrapped = true;
      d -= opt_.box * std::round(d / opt_.box);
      d2 += d * d;
    }
    d2max = std::max(d2max, d2);
    if (drift.wrapped || d2max > t2) break;  // verdict forced: rebuild
  }
  drift.max = std::sqrt(d2max);
  return drift;
}

SpeciesView InteractionDomain::all() const {
  const auto& t = checked_tree();
  return {t.leaves().data(), order_all_.data(), t.leaves().size()};
}

SpeciesView InteractionDomain::first() const {
  checked_tree();
  return {leaves_first_.data(), order_local_.data(), leaves_first_.size()};
}

SpeciesView InteractionDomain::second() const {
  checked_tree();
  return {leaves_second_.data(), order_local_.data(), leaves_second_.size()};
}

std::vector<tree::LeafPair> InteractionDomain::interacting_pairs(
    double cutoff) const {
  return checked_tree().interacting_pairs(cutoff);
}

}  // namespace hacc::domain
