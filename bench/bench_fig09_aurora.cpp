// Figure 9: application efficiency of SYCL variants on Aurora.  The paper's
// shape: Select always worst (indirect register access); no single variant
// consistently best; Broadcast wins the atomic-heavy kernels.

#include "fig_variants.hpp"

namespace {
using namespace hacc;

void BM_AuroraEfficiencyTable(benchmark::State& state) {
  bench::run_efficiency_benchmark(state, platform::aurora());
}
BENCHMARK(BM_AuroraEfficiencyTable);

void print_fig() {
  bench::print_variant_figure(platform::aurora(),
                              "Figure 9: application efficiency of SYCL variants on Aurora");
  std::printf("\nPaper shape: Select always worst; best variant kernel-dependent;\n"
              "selecting the best variant per kernel improves performance 2-5x.\n");
}
}  // namespace

HACC_BENCH_MAIN(print_fig)
