// Ablation: per-kernel auto-tuning of sub-group size, register-file mode,
// and communication variant — the future work the paper defers in §5.2
// ("exploring the tuning of these parameters for individual kernels") and
// §8 ("selectively applying different optimization strategies to different
// kernels").

#include "bench_common.hpp"
#include "platform/tuning.hpp"

namespace {

using namespace hacc;

platform::PortabilityStudy& study() {
  static platform::PortabilityStudy s;
  return s;
}

void BM_TuneKernel(benchmark::State& state) {
  const platform::AutoTuner tuner(study());
  const auto p = platform::aurora();
  for (auto _ : state) {
    auto tuned = tuner.tune_kernel(p, "upBarAc");
    benchmark::DoNotOptimize(tuned);
  }
}
BENCHMARK(BM_TuneKernel);

void BM_TunePlatform(benchmark::State& state) {
  const platform::AutoTuner tuner(study());
  const auto p = platform::aurora();
  for (auto _ : state) {
    auto report = tuner.tune_platform(p);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_TunePlatform);

void print_report() {
  bench::print_header(
      "Per-kernel auto-tuning (the paper's deferred future work, §5.2/§8)");
  const platform::AutoTuner tuner(study());
  for (const auto& p : platform::all_platforms()) {
    const auto report = tuner.tune_platform(p);
    std::printf("\n%s  (overall gain over the paper's fixed tuning: %.3fx)\n",
                p.name.c_str(), report.overall_gain);
    std::printf("  %-10s %-16s %4s %5s %10s %8s\n", "kernel", "variant", "sg",
                "GRF", "seconds", "gain");
    for (const auto& k : report.kernels) {
      std::printf("  %-10s %-16s %4d %5s %10.2e %7.3fx\n", k.kernel.c_str(),
                  to_string(k.variant), k.tuning.sg_size,
                  k.tuning.large_grf ? "256" : "128", k.seconds,
                  k.gain_over_paper_choice);
    }
  }
  std::printf(
      "\nThe gains concentrate on Aurora, where sub-group size and register-file\n"
      "mode genuinely trade off (§5.2); Polaris has a single legal configuration\n"
      "per variant, so tuning adds nothing there — as the paper anticipated.\n");
}

}  // namespace

HACC_BENCH_MAIN(print_report)
