// Tree-multipole gravity ablation: backend wall-clock across N (the far
// field must beat the all-pairs PP evaluation from 32^3 particles up) and
// the theta accuracy/work trade-off that picks the default opening angle.

#include <cmath>
#include <limits>
#include <vector>

#include "bench_common.hpp"
#include "fmm/fmm.hpp"
#include "gravity/pp_short.hpp"
#include "tree/rcb.hpp"
#include "util/rng.hpp"
#include "xsycl/queue.hpp"

namespace {

using namespace hacc;
using util::Vec3d;

constexpr double kBox = 25.0;
// Leaf sizes trade MAC granularity against half-warp tile occupancy: the
// timed path keeps sub-groups full, the accuracy table wants the finest
// far-field granularity the MAC can exploit at small N.
constexpr int kFmmLeaf = 16;
constexpr int kSummaryLeaf = 8;

std::vector<Vec3d> random_positions(int n, double box) {
  const util::CounterRng rng(7);
  std::vector<Vec3d> pos(n);
  for (int i = 0; i < n; ++i) {
    pos[i] = {box * rng.uniform(3 * i), box * rng.uniform(3 * i + 1),
              box * rng.uniform(3 * i + 2)};
  }
  return pos;
}

struct GravityFixture {
  std::vector<Vec3d> pos;
  std::vector<double> mass;
  std::vector<float> x, y, z, m, ax, ay, az;
  gravity::PolyShortForce poly = gravity::PolyShortForce::newtonian(kBox);

  explicit GravityFixture(int n) : pos(random_positions(n, kBox)), mass(n, 1.0) {
    x.resize(n);
    y.resize(n);
    z.resize(n);
    m.assign(n, 1.f);
    ax.assign(n, 0.f);
    ay.assign(n, 0.f);
    az.assign(n, 0.f);
    for (int i = 0; i < n; ++i) {
      x[i] = float(pos[i].x);
      y[i] = float(pos[i].y);
      z[i] = float(pos[i].z);
    }
  }

  gravity::GravityArrays arrays() {
    return {x.data(), y.data(), z.data(), m.data(),
            ax.data(), ay.data(), az.data(), x.size()};
  }

  void zero() {
    std::fill(ax.begin(), ax.end(), 0.f);
    std::fill(ay.begin(), ay.end(), 0.f);
    std::fill(az.begin(), az.end(), 0.f);
  }
};

gravity::PpOptions pp_options() {
  gravity::PpOptions opt;
  opt.box = float(kBox);
  opt.G = 1.0f;
  opt.softening = 0.05f;
  return opt;
}

// Baseline: every leaf pair evaluated directly (a one-box cutoff lists all
// pairs under the minimum image) — the O(N^2) cost the tree removes.
void BM_AllPairsPp(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const int n = side * side * side;
  GravityFixture fx(n);
  util::ThreadPool pool;
  xsycl::Queue q(pool);
  const tree::RcbTree tr(fx.pos, kBox, 32);
  const auto pairs = tr.interacting_pairs(kBox);
  std::uint64_t interactions = 0;
  for (auto _ : state) {
    fx.zero();
    const auto stats = run_pp_short(q, fx.arrays(), tr, pairs, fx.poly, pp_options());
    interactions += stats.ops.interactions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(interactions));
  state.SetLabel("N=" + std::to_string(side) + "^3, " +
                 std::to_string(pairs.size()) + " leaf pairs");
}
BENCHMARK(BM_AllPairsPp)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

// Full tree-multipole evaluation: tree build + upward pass + MAC traversal
// + near-field PP + far-field M2P, end to end.
void BM_FmmGravity(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const double theta = state.range(1) / 100.0;
  const int n = side * side * side;
  GravityFixture fx(n);
  util::ThreadPool pool;
  xsycl::Queue q(pool);
  std::uint64_t interactions = 0, m2p = 0;
  std::size_t near_pairs = 0, far_entries = 0;
  for (auto _ : state) {
    fx.zero();
    const tree::RcbTree tr(fx.pos, kBox, kFmmLeaf);
    const fmm::FmmEvaluator ev(tr, fx.pos, fx.mass, pool);
    const auto lists =
        ev.build_interactions(theta, std::numeric_limits<double>::infinity());
    const auto stats = run_pp_short(q, fx.arrays(), tr, lists.near, fx.poly,
                                    pp_options(), "bench_fmm_near");
    const auto far = ev.evaluate_far(lists, fx.arrays(),
                                     {kBox, 1.0, 0.05, nullptr});
    interactions += stats.ops.interactions;
    m2p += far.m2p_ops;
    near_pairs = lists.near.size();
    far_entries = lists.far_entries();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(interactions + m2p));
  state.SetLabel("N=" + std::to_string(side) + "^3 theta=" +
                 std::to_string(theta).substr(0, 4) + ", near " +
                 std::to_string(near_pairs) + " pairs, far " +
                 std::to_string(far_entries) + " entries");
}
BENCHMARK(BM_FmmGravity)
    ->Args({16, 50})
    ->Args({32, 30})
    ->Args({32, 50})
    ->Args({32, 80})
    ->Unit(benchmark::kMillisecond);

// Accuracy table: relative RMS force error against the all-pairs reference
// across opening angles, at a size where the O(N^2) reference is cheap.
void print_summary() {
  bench::print_header("Tree-multipole far field: theta accuracy/work trade-off");
  const int n = 16 * 16 * 16;
  GravityFixture ref_fx(n);
  reference_pp_short(ref_fx.arrays(), ref_fx.poly, float(kBox), 1.0f, 0.05f);

  util::ThreadPool pool;
  xsycl::Queue q(pool);
  std::printf("%-7s %14s %12s %12s %14s\n", "theta", "rel RMS err", "near pairs",
              "far entries", "m2p ops");
  for (const double theta : {0.3, 0.5, 0.8, 1.0}) {
    GravityFixture fx(n);
    const tree::RcbTree tr(fx.pos, kBox, kSummaryLeaf);
    const fmm::FmmEvaluator ev(tr, fx.pos, fx.mass, pool);
    const auto lists =
        ev.build_interactions(theta, std::numeric_limits<double>::infinity());
    run_pp_short(q, fx.arrays(), tr, lists.near, fx.poly, pp_options(),
                 "bench_fmm_near");
    const auto far = ev.evaluate_far(lists, fx.arrays(), {kBox, 1.0, 0.05, nullptr});
    double num = 0.0, den = 0.0;
    for (int i = 0; i < n; ++i) {
      const double dx = double(fx.ax[i]) - ref_fx.ax[i];
      const double dy = double(fx.ay[i]) - ref_fx.ay[i];
      const double dz = double(fx.az[i]) - ref_fx.az[i];
      num += dx * dx + dy * dy + dz * dz;
      den += double(ref_fx.ax[i]) * ref_fx.ax[i] +
             double(ref_fx.ay[i]) * ref_fx.ay[i] +
             double(ref_fx.az[i]) * ref_fx.az[i];
    }
    std::printf("%-7.2f %14.3e %12zu %12llu %14llu\n", theta, std::sqrt(num / den),
                lists.near.size(), (unsigned long long)lists.far_entries(),
                (unsigned long long)far.m2p_ops);
  }
  std::printf(
      "\nNear pairs run through the half-warp PP kernel; far entries are\n"
      "(leaf, source-node) multipole interactions.  Pairs straddling the\n"
      "half-box minimum-image discontinuity always stay in the near field,\n"
      "which bounds the achievable far fraction in a periodic box.\n");
}

}  // namespace

HACC_BENCH_MAIN(print_summary)
