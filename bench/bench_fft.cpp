// Ablation: the FFT substrate behind the long-range Poisson solver.

#include <vector>

#include "bench_common.hpp"
#include "fft/fft.hpp"
#include "util/rng.hpp"

namespace {

using namespace hacc;

void BM_Fft1D(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const util::CounterRng rng(3);
  std::vector<fft::cplx> data(n);
  for (int i = 0; i < n; ++i) data[i] = {rng.normal(i), 0.0};
  for (auto _ : state) {
    fft::fft_1d(data.data(), n, false);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Fft1D)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Fft3DForward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::ThreadPool pool;
  fft::Fft3D fft(n, pool);
  const util::CounterRng rng(5);
  std::vector<fft::cplx> grid(fft.size());
  for (std::size_t i = 0; i < grid.size(); ++i) grid[i] = {rng.normal(i), 0.0};
  for (auto _ : state) {
    fft.forward(grid);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(fft.size()));
  state.SetLabel(std::to_string(n) + "^3");
}
BENCHMARK(BM_Fft3DForward)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_Fft3DR2CRoundTrip(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::ThreadPool pool;
  fft::Fft3D fft(n, pool);
  const util::CounterRng rng(9);
  std::vector<double> real(fft.size());
  for (std::size_t i = 0; i < real.size(); ++i) real[i] = rng.normal(i);
  std::vector<fft::cplx> half;
  for (auto _ : state) {
    fft.forward_r2c(real, half);
    fft.inverse_c2r(half, real);
    benchmark::ClobberMemory();
  }
  state.SetLabel(std::to_string(n) + "^3 r2c+c2r (half spectrum)");
}
BENCHMARK(BM_Fft3DR2CRoundTrip)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_Fft3DRoundTrip(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::ThreadPool pool;
  fft::Fft3D fft(n, pool);
  std::vector<fft::cplx> grid(fft.size(), fft::cplx(1.0, 0.0));
  for (auto _ : state) {
    fft.forward(grid);
    fft.inverse(grid);
    benchmark::ClobberMemory();
  }
  state.SetLabel(std::to_string(n) + "^3 forward+inverse");
}
BENCHMARK(BM_Fft3DRoundTrip)->Arg(32)->Unit(benchmark::kMillisecond);

void print_summary() {
  hacc::bench::print_header("FFT substrate");
  std::printf(
      "The threaded 3-D FFT stands in for HACC's distributed-memory FFT (§3.1);\n"
      "at the per-rank scales of this reproduction the Poisson solve is a small\n"
      "fraction of a step, matching the paper's observation that host-side FFT\n"
      "work is sub-dominant to the GPU kernels (§3.4.4).\n"
      "\n"
      "Real fields go through the r2c/c2r half-spectrum pair: two real pencil\n"
      "samples packed per complex slot and untangled via Hermitian symmetry,\n"
      "about half the flops and traffic of the complex round trip above.\n");
}

}  // namespace

HACC_BENCH_MAIN(print_summary)
