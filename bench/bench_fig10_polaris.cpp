// Figure 10: application efficiency of SYCL variants on Polaris (A100).
// The paper's shape: Select always best (native warp shuffles); Broadcast
// up to ~10x slower on register-heavy kernels (spills); Memory variants
// worst on the register-heavy kernels (shared-memory/L1 trade-off).

#include "fig_variants.hpp"

namespace {
using namespace hacc;

void BM_PolarisEfficiencyTable(benchmark::State& state) {
  bench::run_efficiency_benchmark(state, platform::polaris());
}
BENCHMARK(BM_PolarisEfficiencyTable);

void print_fig() {
  bench::print_variant_figure(platform::polaris(),
                              "Figure 10: application efficiency of SYCL variants on Polaris");
  std::printf("\nPaper shape: Select always best; Broadcast almost 10x slower in\n"
              "some cases; no vISA variant exists for NVIDIA hardware.\n");
}
}  // namespace

HACC_BENCH_MAIN(print_fig)
