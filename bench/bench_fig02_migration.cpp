// Figure 2 made a measured quantity: the paper benchmarks particle
// migration and ghost exchange across ranks; this binary measures the same
// phases on the in-process shard engine.  A shard-count sweep (1/2/4/8)
// times full solver steps and splits out the per-step migration and
// ghost-exchange cost, plus a force-parity column against the single-domain
// evaluation (the ghost layer is exact, so the error is summation-order
// noise).  Emits BENCH_shard.json at the repo root like BENCH_pm.json.

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "shard/engine.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace hacc;
using util::Vec3d;

constexpr double kBox = 25.0;

core::ParticleSet random_dm(std::size_t n, std::uint64_t seed) {
  core::ParticleSet p;
  p.resize(n);
  const util::CounterRng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    p.x[i] = static_cast<float>(kBox * rng.uniform(3 * i));
    p.y[i] = static_cast<float>(kBox * rng.uniform(3 * i + 1));
    p.z[i] = static_cast<float>(kBox * rng.uniform(3 * i + 2));
    p.mass[i] = 1.f;
  }
  return p;
}

std::vector<Vec3d> positions_of(const core::ParticleSet& p) {
  std::vector<Vec3d> pos(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) pos[i] = p.pos_of(i);
  return pos;
}

// The raw per-rebuild cost: migration scan + handover + ghost exchange +
// per-shard trees, the quantity the paper's figure 2 charts.  Particles
// random-walk between prepares so boundary crossings really migrate.
void BM_ShardPrepare(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  util::ThreadPool pool;
  core::ParticleSet dm = random_dm(20'000, 11), gas;
  auto pos = positions_of(dm);
  shard::ShardOptions opt;
  opt.box = kBox;
  opt.count = count;
  opt.range = 1.0;
  opt.pool = &pool;
  shard::ShardEngine engine(opt);  // kAlways: every prepare re-migrates
  const util::CounterRng rng(3);
  std::uint64_t ctr = 0;
  for (auto _ : state) {
    engine.prepare(dm, gas, pos);
    benchmark::DoNotOptimize(engine.stats().ghost_copies);
    state.PauseTiming();
    for (std::size_t i = 0; i < dm.size(); ++i) {
      const auto wrap = [&](float& c) {
        c += static_cast<float>(0.6 * (rng.uniform(ctr++) - 0.5));
        if (c < 0.f) c += static_cast<float>(kBox);
        if (c >= static_cast<float>(kBox)) c -= static_cast<float>(kBox);
      };
      wrap(dm.x[i]);
      wrap(dm.y[i]);
      wrap(dm.z[i]);
      pos[i] = dm.pos_of(i);
    }
    state.ResumeTiming();
  }
  const std::uint64_t evals =
      std::max<std::uint64_t>(1, engine.stats().evaluations);
  state.SetLabel(engine.layout().describe() + " ghosts/prep " +
                 std::to_string(engine.stats().ghost_copies / evals) +
                 " migrated/prep " +
                 std::to_string(engine.stats().migrated / evals));
}
BENCHMARK(BM_ShardPrepare)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Shard sweep over full solver steps + BENCH_shard.json

struct SweepRow {
  int shards = 1;
  std::string grid = "1x1x1";
  double wall_s = 0.0;              // total for the measured steps
  double particle_steps_per_s = 0.0;
  // Wall time with the serial sum of per-shard P-P walks replaced by the
  // slowest single shard — what a box with cores >= shards measures, since
  // the walks are independent task-graph nodes.  On fewer cores the
  // measured wall instead pays the full duplicated-halo sum.
  double critical_path_steps_per_s = 0.0;
  double migrate_s_per_step = 0.0;
  double exchange_s_per_step = 0.0;
  std::uint64_t reshards = 0;
  std::uint64_t migrated = 0;
  std::uint64_t ghost_copies = 0;
  double parity_rel_rms = 0.0;      // gravity at the IC vs single-domain
};

// Particle-bound gravity workload at a scale where the halo is thin: the
// PP cutoff is 6.25 * box / pm_grid ~ 2.4, against 12.5-wide cells at 8
// shards.  (With hydro at small np_side the 4 h0 support radius makes every
// halo span most of the box, and sharding degenerates to replication.)
core::SimConfig sweep_config(int shards) {
  core::SimConfig cfg;
  cfg.np_side = 32;
  cfg.box = kBox;
  cfg.pm_grid = 64;
  cfg.seed = 7;
  cfg.hydro = false;
  cfg.shard_count = shards;
  return cfg;
}

double rel_rms(const std::vector<Vec3d>& a, const std::vector<Vec3d>& b) {
  double diff = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff += norm2(a[i] - b[i]);
    ref += norm2(b[i]);
  }
  return ref > 0.0 ? std::sqrt(diff / ref) : std::sqrt(diff);
}

SweepRow run_sweep_point(int shards, int steps, util::ThreadPool& pool,
                         const std::vector<Vec3d>& reference_gravity) {
  core::Solver solver(sweep_config(shards), pool);
  solver.initialize();
  SweepRow row;
  row.shards = shards;
  if (const shard::ShardEngine* e = solver.shard_engine()) {
    row.grid = e->layout().describe();
  }
  if (!reference_gravity.empty()) {
    row.parity_rel_rms =
        rel_rms(solver.gravity_accelerations(), reference_gravity);
  }
  const shard::EngineStats eng0 = solver.shard_engine() != nullptr
                                      ? solver.shard_engine()->stats()
                                      : shard::EngineStats{};
  std::vector<double> pp0(static_cast<std::size_t>(shards), 0.0);
  if (const shard::ShardEngine* e = solver.shard_engine()) {
    for (int s = 0; s < shards; ++s) pp0[s] = e->shard_view(s).pp_seconds;
  }
  const double t0 = util::wtime();
  for (int s = 0; s < steps; ++s) {
    const core::StepStats st = solver.step();
    row.migrate_s_per_step += st.shard_migrate_seconds;
    row.exchange_s_per_step += st.shard_exchange_seconds;
  }
  row.wall_s = util::wtime() - t0;
  row.migrate_s_per_step /= steps;
  row.exchange_s_per_step /= steps;
  const std::size_t n = solver.dm().size() + solver.gas().size();
  row.particle_steps_per_s = double(n) * steps / row.wall_s;
  row.critical_path_steps_per_s = row.particle_steps_per_s;
  if (const shard::ShardEngine* e = solver.shard_engine()) {
    row.reshards = e->stats().reshards - eng0.reshards;
    row.migrated = e->stats().migrated - eng0.migrated;
    row.ghost_copies = e->stats().ghost_copies - eng0.ghost_copies;
    double slowest = 0.0;
    for (int s = 0; s < shards; ++s) {
      slowest = std::max(slowest, e->shard_view(s).pp_seconds - pp0[s]);
    }
    const double sum = e->stats().pp_seconds - eng0.pp_seconds;
    const double modeled = row.wall_s - sum + slowest;
    if (modeled > 0.0) {
      row.critical_path_steps_per_s = double(n) * steps / modeled;
    }
  }
  return row;
}

void write_bench_json(const std::vector<SweepRow>& rows, int steps,
                      unsigned threads) {
  const char* path = std::getenv("HACC_BENCH_JSON");
  if (path == nullptr) path = "BENCH_shard.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_fig02_migration: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"shard_sweep\",\n");
  std::fprintf(f, "  \"np_side\": 32,\n  \"box\": %.1f,\n  \"hydro\": false,\n",
               kBox);
  std::fprintf(f, "  \"threads\": %u,\n  \"steps\": %d,\n", threads, steps);
  std::fprintf(f,
               "  \"parity_note\": \"solver-level float gravity vs the "
               "legacy float-accumulating path; the <1e-10 double-sum bar "
               "is enforced by test_shard_parity\",\n");
  std::fprintf(f, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"shards\": %d, \"grid\": \"%s\", \"wall_s\": %.4f, "
        "\"particle_steps_per_s\": %.0f, "
        "\"critical_path_steps_per_s\": %.0f, "
        "\"migrate_ms_per_step\": %.4f, "
        "\"exchange_ms_per_step\": %.4f, \"reshards\": %llu, "
        "\"migrated\": %llu, \"ghost_copies\": %llu, "
        "\"force_parity_rel_rms\": %.3e}%s\n",
        r.shards, r.grid.c_str(), r.wall_s, r.particle_steps_per_s,
        r.critical_path_steps_per_s,
        r.migrate_s_per_step * 1e3, r.exchange_s_per_step * 1e3,
        static_cast<unsigned long long>(r.reshards),
        static_cast<unsigned long long>(r.migrated),
        static_cast<unsigned long long>(r.ghost_copies),
        r.parity_rel_rms, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

void print_sweep() {
  util::ThreadPool pool;
  const int steps = 3;
  bench::print_header(
      "Shard sweep: full solver steps, migration + ghost-exchange phases\n"
      "(np_side 32, dm-only, pm_pp; parity vs the single-domain evaluation)");

  // The single-domain gravity at the shared IC anchors the parity column.
  std::vector<Vec3d> reference;
  {
    core::Solver ref(sweep_config(1), pool);
    ref.initialize();
    reference = ref.gravity_accelerations();
  }

  std::vector<SweepRow> rows;
  std::printf("%-7s %-8s %9s %12s %12s %11s %11s %8s %9s %11s\n", "shards",
              "grid", "wall s", "pstep/s", "crit-path/s", "migrate ms",
              "exchange ms", "reshard", "migrated", "parity");
  for (const int shards : {1, 2, 4, 8}) {
    rows.push_back(run_sweep_point(shards, steps, pool, reference));
    const SweepRow& r = rows.back();
    std::printf(
        "%-7d %-8s %9.3f %12.0f %12.0f %11.4f %11.4f %8llu %9llu %11.3e\n",
        r.shards, r.grid.c_str(), r.wall_s, r.particle_steps_per_s,
        r.critical_path_steps_per_s, r.migrate_s_per_step * 1e3,
        r.exchange_s_per_step * 1e3,
        static_cast<unsigned long long>(r.reshards),
        static_cast<unsigned long long>(r.migrated), r.parity_rel_rms);
  }
  write_bench_json(rows, steps, pool.size());
}

}  // namespace

HACC_BENCH_MAIN(print_sweep)
