// Figure 2: the initial performance of the migrated SYCL code compared to
// CUDA, HIP (default and fast-math builds), and the optimized SYCL code.
// Modeled total GPU seconds at the paper's per-rank problem scale
// (2 x 256^3 particles, five steps).

#include <cmath>

#include "bench_common.hpp"
#include "platform/study.hpp"

namespace {

using namespace hacc;

platform::PortabilityStudy& study() {
  static platform::PortabilityStudy s;
  return s;
}

void BM_CostModelPredict(benchmark::State& state) {
  const auto p = platform::aurora();
  const auto& ks = platform::kernel_statics("upBarAc");
  xsycl::OpCounters ops;
  ops.interactions = 1'000'000;
  ops.select_words = 30'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        platform::predict_seconds(ops, ks, xsycl::CommVariant::kSelect, {}, p));
  }
}
BENCHMARK(BM_CostModelPredict);

void BM_Figure2Assembly(benchmark::State& state) {
  auto& s = study();  // profile collection outside the timed region
  for (auto _ : state) {
    auto rows = s.figure2(s.paper_problem_scale());
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_Figure2Assembly);

void print_fig2() {
  bench::print_header(
      "Figure 2: initial performance of the migrated SYCL code (modeled seconds,\n"
      "paper-scale problem; lower is better)");
  const auto rows = study().figure2(study().paper_problem_scale());
  std::printf("%-20s %10s %10s %10s\n", "configuration", "Frontier", "Polaris",
              "Aurora");
  for (const auto& row : rows) {
    std::printf("%-20s", row.label.c_str());
    for (const char* plat : {"Frontier", "Polaris", "Aurora"}) {
      const auto it = row.seconds_by_platform.find(plat);
      if (it == row.seconds_by_platform.end()) {
        std::printf(" %10s", "-");
      } else {
        std::printf(" %10.0f", it->second);
      }
    }
    std::printf("\n");
  }
  double def = 0, opt = 0;
  for (const auto& row : rows) {
    if (row.label == "SYCL (Default)") def = row.seconds_by_platform.at("Aurora");
    if (row.label == "SYCL (Optimized)") opt = row.seconds_by_platform.at("Aurora");
  }
  std::printf(
      "\nPaper anchors (§4.4): fast math closes the CUDA/HIP gap; SYCL slightly\n"
      "faster than both; Aurora optimizations improve performance 2.4x.\n");
  std::printf("Modeled Aurora improvement: %.2fx (paper: 2.4x)\n", def / opt);
}

}  // namespace

HACC_BENCH_MAIN(print_fig2)
