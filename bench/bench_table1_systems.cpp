// Table 1: hardware configuration for one node of each test system.

#include "bench_common.hpp"
#include "platform/study.hpp"

namespace {

using namespace hacc;

void BM_PlatformModelConstruction(benchmark::State& state) {
  for (auto _ : state) {
    auto platforms = platform::all_platforms();
    benchmark::DoNotOptimize(platforms);
  }
}
BENCHMARK(BM_PlatformModelConstruction);

void BM_RegisterBudgetQuery(benchmark::State& state) {
  const auto p = platform::aurora();
  int sg = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.regs_available(sg, true));
    sg = sg == 16 ? 32 : 16;
  }
}
BENCHMARK(BM_RegisterBudgetQuery);

void print_table1() {
  bench::print_header("Table 1: hardware configuration for one node of each test system");
  std::printf("%-9s %-36s %-8s %-32s %-7s %s\n", "System", "CPU", "Sockets", "GPU",
              "# GPUs", "FP32 Peak per GPU");
  for (const auto& p : platform::all_platforms()) {
    std::printf("%-9s %-36s %-8d %-32s %-7d %.1f TFLOPS\n", p.name.c_str(),
                p.cpu.c_str(), p.cpu_sockets, p.gpu.c_str(), p.gpus_per_node,
                p.fp32_peak_tflops);
  }
  std::printf(
      "\nPer-rank devices (§3.4.2): Aurora 1 stack (of 2), Frontier 1 GCD (of 2),\n"
      "Polaris half an A100 (2 ranks per GPU, ~11%% efficiency loss).\n");
  std::printf("Sub-group sizes: ");
  for (const auto& p : platform::all_platforms()) {
    std::printf("%s {", p.name.c_str());
    for (std::size_t i = 0; i < p.subgroup_sizes.size(); ++i) {
      std::printf("%s%d", i ? "," : "", p.subgroup_sizes[i]);
    }
    std::printf("}  ");
  }
  std::printf("\n");
}

}  // namespace

HACC_BENCH_MAIN(print_table1)
