// Ablation: real measured CPU throughput of the five hot-spot kernels under
// each communication variant on the xsycl substrate (ns per interaction).
// This is the functional execution whose op counts drive the platform
// models — the numbers here are host-CPU times, not GPU projections.

#include <vector>

#include "bench_common.hpp"
#include "core/launch.hpp"
#include "sph/pipeline.hpp"
#include "util/rng.hpp"

namespace {

using namespace hacc;

core::ParticleSet make_gas(int n_side) {
  core::ParticleSet p;
  p.resize(static_cast<std::size_t>(n_side) * n_side * n_side);
  const double dx = 1.0 / n_side;
  const util::CounterRng rng(99);
  std::size_t i = 0;
  for (int ix = 0; ix < n_side; ++ix) {
    for (int iy = 0; iy < n_side; ++iy) {
      for (int iz = 0; iz < n_side; ++iz, ++i) {
        p.x[i] = float((ix + 0.5) * dx + 0.25 * dx * (rng.uniform(6 * i) - 0.5));
        p.y[i] = float((iy + 0.5) * dx + 0.25 * dx * (rng.uniform(6 * i + 1) - 0.5));
        p.z[i] = float((iz + 0.5) * dx + 0.25 * dx * (rng.uniform(6 * i + 2) - 0.5));
        p.vx[i] = float(0.4 * (rng.uniform(6 * i + 3) - 0.5));
        p.vy[i] = float(0.4 * (rng.uniform(6 * i + 4) - 0.5));
        p.vz[i] = float(0.4 * (rng.uniform(6 * i + 5) - 0.5));
        p.mass[i] = float(dx * dx * dx);
        p.h[i] = float(sph::kEta * dx);
        p.u[i] = 1.0f;
      }
    }
  }
  return p;
}

struct Fixture {
  Fixture() : gas(make_gas(10)) {
    sph::PipelineOptions popt;
    popt.hydro.box = 1.0f;
    pipe = sph::build_pipeline(gas, popt);
    // Prime derived state (V, CRK coefficients, EOS) once.
    util::ThreadPool pool;
    xsycl::Queue q(pool);
    sph::run_hydro_pipeline(q, gas, popt);
  }
  core::ParticleSet gas;
  sph::Pipeline pipe;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

const char* kKernels[] = {"upGeo", "upCor", "upBarEx", "upBarAc", "upBarDu"};

void BM_Kernel(benchmark::State& state) {
  auto& f = fixture();
  const char* kernel = kKernels[state.range(0)];
  const auto variant = static_cast<xsycl::CommVariant>(state.range(1));
  const int sg = static_cast<int>(state.range(2));

  sph::HydroOptions opt;
  opt.box = 1.0f;
  opt.variant = variant;
  opt.launch.sub_group_size = sg;

  util::ThreadPool pool;
  xsycl::Queue q(pool);
  std::uint64_t interactions = 0;
  for (auto _ : state) {
    const auto stats = core::KernelRegistry::instance().run(
        kernel, q, f.gas, f.pipe.domain->all(), f.pipe.pairs, opt);
    interactions += stats.ops.interactions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(interactions));
  state.SetLabel(std::string(kernel) + "/" + to_string(variant) + "/sg" +
                 std::to_string(sg));
}

void register_benchmarks() {
  for (int k = 0; k < 5; ++k) {
    for (const auto v : xsycl::kAllVariants) {
      benchmark::RegisterBenchmark("BM_Kernel", BM_Kernel)
          ->Args({k, static_cast<long>(v), 32})
          ->Unit(benchmark::kMillisecond);
    }
  }
  // Sub-group size sweep on the acceleration kernel (the §5.2 knob).
  for (const int sg : {16, 32, 64}) {
    benchmark::RegisterBenchmark("BM_Kernel_sg_sweep", BM_Kernel)
        ->Args({3, static_cast<long>(xsycl::CommVariant::kSelect), sg})
        ->Unit(benchmark::kMillisecond);
  }
}

void print_summary() {
  hacc::bench::print_header(
      "Functional kernel ablation: items_per_second above is real pair\n"
      "interactions per second on the host CPU substrate");
  std::printf(
      "All five variants compute identical physics (see test_sph variant\n"
      "equivalence suite); they differ in communication mechanics, which the\n"
      "platform models price per architecture for Figures 9-11.\n");
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
