// End-to-end scenario benchmarks: whole ScenarioRunner runs (IC stage +
// stepping + diagnostics) per preset and per gravity backend, plus the
// per-step cost of the evolved solver.  The summary emits BENCH_run.json
// (path override: HACC_BENCH_RUN_JSON) next to bench_gravity's
// BENCH_pm.json so every CI run leaves a comparable end-to-end record.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "run/scenario.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hacc;

run::Scenario bench_scenario(const std::string& name, int np) {
  run::Scenario s;
  if (!run::find_scenario(name, s)) std::abort();
  s.sim.np_side = np;
  s.run.checkpoint_path.clear();
  s.run.log_path.clear();
  s.run.outputs_z.clear();
  s.run.max_steps = 64;
  return s;
}

void BM_ScenarioEndToEnd(benchmark::State& state, const std::string& name) {
  const run::Scenario s = bench_scenario(name, 8);
  for (auto _ : state) {
    run::ScenarioRunner runner(s.sim, s.run);
    const auto result = runner.run();
    benchmark::DoNotOptimize(result.final_a);
    state.counters["steps"] = result.steps;
  }
}
BENCHMARK_CAPTURE(BM_ScenarioEndToEnd, paper_benchmark,
                  std::string("paper-benchmark"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScenarioEndToEnd, cosmology_box,
                  std::string("cosmology-box"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScenarioEndToEnd, sph_adiabatic,
                  std::string("sph-adiabatic"))
    ->Unit(benchmark::kMillisecond);

void BM_SolverStep(benchmark::State& state, core::GravityBackend backend) {
  core::SimConfig cfg;
  cfg.np_side = static_cast<int>(state.range(0));
  cfg.n_steps = 1 << 20;  // the fixed da stays tiny: state barely evolves
  cfg.gravity_backend = backend;
  cfg.hydro = backend == core::GravityBackend::kPmPp;
  core::Solver solver(cfg);
  solver.initialize();
  for (auto _ : state) {
    const auto stats = solver.step();
    benchmark::DoNotOptimize(stats.a1);
  }
}
BENCHMARK_CAPTURE(BM_SolverStep, pm_pp_hydro, core::GravityBackend::kPmPp)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SolverStep, treepm_gravity_only,
                  core::GravityBackend::kTreePm)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Figure output: one timed end-to-end run per preset + BENCH_run.json

struct ScenarioRecord {
  std::string name;
  int steps = 0;
  double wall_seconds = 0.0;
  double step_ms = 0.0;      // mean per-step wall
  int n_outputs = 0;
  double tree_seconds = 0.0; // shared-domain tree build/refresh time
  int tree_builds = 0;
  int tree_reuses = 0;
};

ScenarioRecord time_scenario(const std::string& name) {
  run::Scenario s = bench_scenario(name, 8);
  if (name == "cosmology-box") s.run.outputs_z = {20.0, 10.0};
  run::ScenarioRunner runner(s.sim, s.run);
  const auto result = runner.run();
  ScenarioRecord rec;
  rec.name = name;
  rec.steps = result.steps;
  rec.wall_seconds = result.wall_seconds;
  rec.step_ms = result.steps > 0
                    ? 1e3 * result.wall_seconds / result.steps
                    : 0.0;
  rec.n_outputs = static_cast<int>(result.outputs.size());
  for (const auto& stats : result.history) {
    rec.tree_seconds += stats.tree_seconds;
    rec.tree_builds += stats.tree_builds;
    rec.tree_reuses += stats.tree_reuses;
  }
  return rec;
}

// One paper-benchmark run per pool size: the thread-scaling record the CI
// threads-sweep job compares.  Speedups are honest for the machine running
// the bench — host_cores rides along so a 1-core container's flat curve is
// readable as such.
struct ThreadsRecord {
  unsigned threads = 1;
  int steps = 0;
  double wall_seconds = 0.0;
  double step_ms = 0.0;
  double speedup = 1.0;       // wall(1 thread) / wall(this)
  double overlap_seconds = 0.0;  // wall won by pm/short-range stage overlap
};

std::vector<ThreadsRecord> time_threads_sweep() {
  std::vector<ThreadsRecord> recs;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    const run::Scenario s = bench_scenario("paper-benchmark", 8);
    util::ThreadPool pool(threads);
    run::ScenarioRunner runner(s.sim, s.run, pool);
    const auto result = runner.run();
    ThreadsRecord rec;
    rec.threads = threads;
    rec.steps = result.steps;
    rec.wall_seconds = result.wall_seconds;
    rec.step_ms =
        result.steps > 0 ? 1e3 * result.wall_seconds / result.steps : 0.0;
    for (const auto& stats : result.history) {
      rec.overlap_seconds += stats.overlap_seconds;
    }
    rec.speedup = recs.empty() || rec.wall_seconds <= 0.0
                      ? 1.0
                      : recs.front().wall_seconds / rec.wall_seconds;
    recs.push_back(rec);
  }
  return recs;
}

void write_bench_json(const ScenarioRecord recs[3],
                      const std::vector<ThreadsRecord>& sweep) {
  const char* path = std::getenv("HACC_BENCH_RUN_JSON");
  if (path == nullptr) path = "BENCH_run.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_run: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"scenario_run\",\n  \"np\": 8,\n");
  std::fprintf(f, "  \"scenarios\": {\n");
  for (int i = 0; i < 3; ++i) {
    std::fprintf(f,
                 "    \"%s\": {\"steps\": %d, \"wall_s\": %.4f, "
                 "\"step_ms\": %.3f, \"outputs\": %d, \"tree_s\": %.4f, "
                 "\"tree_builds\": %d, \"tree_reuses\": %d}%s\n",
                 recs[i].name.c_str(), recs[i].steps, recs[i].wall_seconds,
                 recs[i].step_ms, recs[i].n_outputs, recs[i].tree_seconds,
                 recs[i].tree_builds, recs[i].tree_reuses, i < 2 ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"threads_sweep\": {\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const ThreadsRecord& r = sweep[i];
    std::fprintf(f,
                 "    \"%u\": {\"steps\": %d, \"wall_s\": %.4f, "
                 "\"step_ms\": %.3f, \"speedup\": %.3f, "
                 "\"overlap_s\": %.4f}%s\n",
                 r.threads, r.steps, r.wall_seconds, r.step_ms, r.speedup,
                 r.overlap_seconds, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

void print_summary() {
  hacc::bench::print_header(
      "Scenario runs end to end (np=8, default thread pool)");
  ScenarioRecord recs[3];
  const char* names[3] = {"paper-benchmark", "cosmology-box", "sph-adiabatic"};
  std::printf("%-17s %7s %10s %10s %9s %9s %7s %7s\n", "scenario", "steps",
              "wall s", "step ms", "outputs", "tree ms", "builds", "reuses");
  for (int i = 0; i < 3; ++i) {
    recs[i] = time_scenario(names[i]);
    std::printf("%-17s %7d %10.3f %10.2f %9d %9.2f %7d %7d\n",
                recs[i].name.c_str(), recs[i].steps, recs[i].wall_seconds,
                recs[i].step_ms, recs[i].n_outputs, 1e3 * recs[i].tree_seconds,
                recs[i].tree_builds, recs[i].tree_reuses);
  }
  hacc::bench::print_header("Thread scaling (paper-benchmark, np=8)");
  const std::vector<ThreadsRecord> sweep = time_threads_sweep();
  std::printf("%-8s %7s %10s %10s %9s %10s\n", "threads", "steps", "wall s",
              "step ms", "speedup", "overlap s");
  for (const ThreadsRecord& r : sweep) {
    std::printf("%-8u %7d %10.3f %10.2f %9.2f %10.4f\n", r.threads, r.steps,
                r.wall_seconds, r.step_ms, r.speedup, r.overlap_seconds);
  }
  write_bench_json(recs, sweep);
}

}  // namespace

HACC_BENCH_MAIN(print_summary)
