// Neighbor-machinery benchmarks for the interaction-domain subsystem:
// tree build vs Verlet-skin reuse cost, streamed pair-traversal throughput,
// and a skin sweep over a drifting particle set showing how the rebuild
// policy cuts the per-step tree + pairs phase.  The summary emits
// BENCH_neighbor.json (path override: HACC_BENCH_NEIGHBOR_JSON) next to
// BENCH_pm.json / BENCH_run.json so every CI run leaves a comparable record.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "domain/domain.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace hacc;
using util::Vec3d;

constexpr double kBox = 10.0;
constexpr int kLeafSize = 32;

struct DriftingSet {
  std::vector<Vec3d> pos;
  std::vector<Vec3d> vel;

  explicit DriftingSet(int n_side, std::uint64_t seed = 17) {
    const int n = n_side * n_side * n_side;
    pos.resize(n);
    vel.resize(n);
    const double dx = kBox / n_side;
    const util::CounterRng rng(seed);
    std::size_t i = 0;
    for (int ix = 0; ix < n_side; ++ix) {
      for (int iy = 0; iy < n_side; ++iy) {
        for (int iz = 0; iz < n_side; ++iz, ++i) {
          pos[i] = {(ix + 0.5) * dx + 0.3 * dx * (rng.uniform(6 * i) - 0.5),
                    (iy + 0.5) * dx + 0.3 * dx * (rng.uniform(6 * i + 1) - 0.5),
                    (iz + 0.5) * dx + 0.3 * dx * (rng.uniform(6 * i + 2) - 0.5)};
          vel[i] = {rng.uniform(6 * i + 3) - 0.5, rng.uniform(6 * i + 4) - 0.5,
                    rng.uniform(6 * i + 5) - 0.5};
        }
      }
    }
  }

  // Advances every particle by dt * vel with periodic wrap.
  void drift(double dt) {
    for (std::size_t i = 0; i < pos.size(); ++i) {
      for (int a = 0; a < 3; ++a) {
        pos[i][a] += dt * vel[i][a];
        pos[i][a] -= kBox * std::floor(pos[i][a] / kBox);
      }
    }
  }
};

domain::DomainOptions domain_options(double skin, domain::RebuildPolicy policy) {
  domain::DomainOptions opt;
  opt.box = kBox;
  opt.leaf_size = kLeafSize;
  opt.skin = skin;
  opt.rebuild = policy;
  return opt;
}

void BM_TreeBuild(benchmark::State& state) {
  const DriftingSet set(static_cast<int>(state.range(0)));
  domain::InteractionDomain dom(
      domain_options(0.0, domain::RebuildPolicy::kAlways));
  for (auto _ : state) {
    dom.update(set.pos);
    benchmark::DoNotOptimize(dom.tree().root());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(set.pos.size()));
}
BENCHMARK(BM_TreeBuild)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_TreeReuse(benchmark::State& state) {
  // Drift below skin/2 every iteration: update() refreshes instead of
  // rebuilding — the Verlet fast path.
  DriftingSet set(static_cast<int>(state.range(0)));
  const double dx = kBox / static_cast<double>(state.range(0));
  domain::InteractionDomain dom(
      domain_options(10.0 * kBox, domain::RebuildPolicy::kDisplacement));
  dom.update(set.pos);
  for (auto _ : state) {
    set.drift(1e-4 * dx);
    dom.update(set.pos);
    benchmark::DoNotOptimize(dom.stats().reuses);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(set.pos.size()));
}
BENCHMARK(BM_TreeReuse)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_PairStream(benchmark::State& state) {
  const DriftingSet set(16);
  const double cutoff = 0.12 * kBox * static_cast<double>(state.range(0)) / 10.0;
  domain::InteractionDomain dom(
      domain_options(0.0, domain::RebuildPolicy::kAlways));
  dom.update(set.pos);
  std::uint64_t pairs = 0;
  for (auto _ : state) {
    std::uint64_t n = 0;
    dom.for_each_pair(cutoff, [&n](const tree::LeafPair&) { ++n; });
    benchmark::DoNotOptimize(n);
    pairs += n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
}
BENCHMARK(BM_PairStream)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_PairMaterialize(benchmark::State& state) {
  const DriftingSet set(16);
  const double cutoff = 0.12 * kBox * static_cast<double>(state.range(0)) / 10.0;
  domain::InteractionDomain dom(
      domain_options(0.0, domain::RebuildPolicy::kAlways));
  dom.update(set.pos);
  std::uint64_t pairs = 0;
  for (auto _ : state) {
    const auto list = dom.interacting_pairs(cutoff);
    benchmark::DoNotOptimize(list.data());
    pairs += list.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
}
BENCHMARK(BM_PairMaterialize)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Figure output: build-vs-reuse phase timings + skin sweep -> BENCH_neighbor.json

struct SweepRecord {
  double skin_dx = 0.0;    // skin in units of the interparticle spacing
  int builds = 0;
  int reuses = 0;
  double phase_ms = 0.0;   // total tree + pairs time over the sweep steps
};

struct ThreadRecord {
  int threads = 1;
  double build_ms = 0.0;  // best-of-3 cold build on a pool of that width
};

struct NeighborReport {
  int n_side = 0;
  double build_ms = 0.0;     // one cold tree build (no pool)
  double reuse_ms = 0.0;     // one refresh-path update
  double pairs_per_s = 0.0;  // streamed traversal throughput
  std::vector<ThreadRecord> thread_sweep;
  std::vector<SweepRecord> sweep;
};

NeighborReport measure_report() {
  NeighborReport rep;
  rep.n_side = 20;
  const double dx = kBox / rep.n_side;
  const double cutoff = 2.5 * dx;
  const int steps = 24;
  const double step_drift = 0.05 * dx;  // per-step max displacement scale

  {  // cold build cost
    const DriftingSet set(rep.n_side);
    domain::InteractionDomain dom(
        domain_options(0.0, domain::RebuildPolicy::kAlways));
    const double t0 = util::wtime();
    dom.update(set.pos);
    rep.build_ms = 1e3 * (util::wtime() - t0);
  }
  {  // refresh cost
    DriftingSet set(rep.n_side);
    domain::InteractionDomain dom(
        domain_options(10.0 * kBox, domain::RebuildPolicy::kDisplacement));
    dom.update(set.pos);
    set.drift(step_drift);
    const double t0 = util::wtime();
    dom.update(set.pos);
    rep.reuse_ms = 1e3 * (util::wtime() - t0);
  }
  // Level-parallel build scaling: the same cold build on pools of widths
  // 1/2/4/8 (the tree build parallelized across top levels in the
  // task-graph PR; this records how that lands on the current machine).
  for (const int n_threads : {1, 2, 4, 8}) {
    util::ThreadPool pool(static_cast<unsigned>(n_threads));
    const DriftingSet set(rep.n_side);
    domain::DomainOptions opt =
        domain_options(0.0, domain::RebuildPolicy::kAlways);
    opt.pool = &pool;
    ThreadRecord rec;
    rec.threads = n_threads;
    rec.build_ms = 1e30;
    for (int r = 0; r < 3; ++r) {
      domain::InteractionDomain dom(opt);
      const double t0 = util::wtime();
      dom.update(set.pos);
      rec.build_ms = std::min(rec.build_ms, 1e3 * (util::wtime() - t0));
    }
    rep.thread_sweep.push_back(rec);
  }

  {  // streamed traversal throughput
    const DriftingSet set(rep.n_side);
    domain::InteractionDomain dom(
        domain_options(0.0, domain::RebuildPolicy::kAlways));
    dom.update(set.pos);
    std::uint64_t pairs = 0;
    const double t0 = util::wtime();
    for (int r = 0; r < 10; ++r) {
      dom.for_each_pair(cutoff, [&pairs](const tree::LeafPair&) { ++pairs; });
    }
    const double dt = util::wtime() - t0;
    rep.pairs_per_s = dt > 0.0 ? static_cast<double>(pairs) / dt : 0.0;
  }

  // Skin sweep: identical drift sequence per skin; skin = 0 with the
  // displacement policy still rebuilds every step (any motion exceeds 0),
  // so it doubles as the always-rebuild baseline.
  for (const double skin_dx : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    DriftingSet set(rep.n_side, 17);
    domain::InteractionDomain dom(
        domain_options(skin_dx * dx, domain::RebuildPolicy::kDisplacement));
    double phase = 0.0;
    std::uint64_t pairs = 0;
    for (int s = 0; s < steps; ++s) {
      const double t0 = util::wtime();
      dom.update(set.pos);
      dom.for_each_pair(cutoff, [&pairs](const tree::LeafPair&) { ++pairs; });
      phase += util::wtime() - t0;
      set.drift(step_drift);
    }
    benchmark::DoNotOptimize(pairs);
    SweepRecord rec;
    rec.skin_dx = skin_dx;
    rec.builds = static_cast<int>(dom.stats().builds);
    rec.reuses = static_cast<int>(dom.stats().reuses);
    rec.phase_ms = 1e3 * phase;
    rep.sweep.push_back(rec);
  }
  return rep;
}

void write_bench_json(const NeighborReport& rep) {
  const char* path = std::getenv("HACC_BENCH_NEIGHBOR_JSON");
  if (path == nullptr) path = "BENCH_neighbor.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_neighbor: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"neighbor_domain\",\n");
  std::fprintf(f, "  \"n\": %d,\n", rep.n_side * rep.n_side * rep.n_side);
  std::fprintf(f, "  \"leaf_size\": %d,\n", kLeafSize);
  std::fprintf(f, "  \"build_ms\": %.4f,\n", rep.build_ms);
  std::fprintf(f, "  \"reuse_ms\": %.4f,\n", rep.reuse_ms);
  std::fprintf(f, "  \"pairs_per_s\": %.3e,\n", rep.pairs_per_s);
  std::fprintf(f, "  \"build_threads_sweep\": [\n");
  for (std::size_t i = 0; i < rep.thread_sweep.size(); ++i) {
    const ThreadRecord& r = rep.thread_sweep[i];
    std::fprintf(f, "    {\"threads\": %d, \"build_ms\": %.4f}%s\n", r.threads,
                 r.build_ms, i + 1 < rep.thread_sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"skin_sweep\": [\n");
  for (std::size_t i = 0; i < rep.sweep.size(); ++i) {
    const SweepRecord& r = rep.sweep[i];
    std::fprintf(f,
                 "    {\"skin_dx\": %.2f, \"builds\": %d, \"reuses\": %d, "
                 "\"phase_ms\": %.4f}%s\n",
                 r.skin_dx, r.builds, r.reuses, r.phase_ms,
                 i + 1 < rep.sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

void print_summary() {
  hacc::bench::print_header(
      "Interaction domain: build vs Verlet reuse, streamed pairs, skin sweep");
  const NeighborReport rep = measure_report();
  std::printf("n = %d, leaf %d: build %.3f ms, reuse %.3f ms (%.1fx), "
              "stream %.2e pairs/s\n",
              rep.n_side * rep.n_side * rep.n_side, kLeafSize, rep.build_ms,
              rep.reuse_ms,
              rep.reuse_ms > 0.0 ? rep.build_ms / rep.reuse_ms : 0.0,
              rep.pairs_per_s);
  std::printf("build threads sweep:");
  for (const ThreadRecord& r : rep.thread_sweep) {
    std::printf("  %dt %.3f ms", r.threads, r.build_ms);
  }
  std::printf("\n");
  std::printf("%-9s %8s %8s %12s\n", "skin/dx", "builds", "reuses", "phase ms");
  const double baseline = rep.sweep.empty() ? 0.0 : rep.sweep.front().phase_ms;
  for (const SweepRecord& r : rep.sweep) {
    std::printf("%-9.2f %8d %8d %12.3f  (%.2fx baseline)\n", r.skin_dx,
                r.builds, r.reuses, r.phase_ms,
                baseline > 0.0 ? r.phase_ms / baseline : 0.0);
  }
  write_bench_json(rep);
}

}  // namespace

HACC_BENCH_MAIN(print_summary)
