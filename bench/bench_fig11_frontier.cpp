// Figure 11: application efficiency of SYCL variants on Frontier (MI250X).
// The paper's shape: Select best; local memory almost always second (one
// exception); Broadcast near 0.6 — MI250X sits architecturally between
// Intel's SIMD machine and NVIDIA's shuffle machine.

#include "fig_variants.hpp"

namespace {
using namespace hacc;

void BM_FrontierEfficiencyTable(benchmark::State& state) {
  bench::run_efficiency_benchmark(state, platform::frontier());
}
BENCHMARK(BM_FrontierEfficiencyTable);

void print_fig() {
  bench::print_variant_figure(platform::frontier(),
                              "Figure 11: application efficiency of SYCL variants on Frontier");
  std::printf("\nPaper shape: Select best; Memory almost always second; Broadcast\n"
              "typically ~0.6 application efficiency.\n");
}
}  // namespace

HACC_BENCH_MAIN(print_fig)
