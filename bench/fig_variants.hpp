#pragma once

// Shared implementation of Figures 9-11: application efficiency of the SYCL
// communication variants per kernel on one platform, normalized to the best
// variant on the same hardware.

#include "bench_common.hpp"
#include "platform/study.hpp"

namespace hacc::bench {

inline platform::PortabilityStudy& shared_study() {
  static platform::PortabilityStudy s;
  return s;
}

inline void print_variant_figure(const platform::PlatformModel& p,
                                 const char* figure_name) {
  std::printf("\n");
  print_header(figure_name);
  auto& study = shared_study();
  const auto eff = study.variant_efficiencies(p);
  std::printf("%-10s", "kernel");
  for (const auto v : xsycl::kAllVariants) std::printf(" %15s", to_string(v));
  std::printf("\n");
  for (const auto& kernel : platform::PortabilityStudy::figure_kernels()) {
    std::printf("%-10s", kernel.c_str());
    for (const auto v : xsycl::kAllVariants) {
      const auto it = eff.at(kernel).find(v);
      if (it == eff.at(kernel).end()) {
        std::printf(" %15s", "unsupported");
      } else {
        std::printf(" %15.2f", it->second);
      }
    }
    std::printf("\n");
  }
}

// Benchmark: one full variant-efficiency assembly for the platform.
inline void run_efficiency_benchmark(benchmark::State& state,
                                     const platform::PlatformModel& p) {
  auto& study = shared_study();
  for (auto _ : state) {
    auto eff = study.variant_efficiencies(p);
    benchmark::DoNotOptimize(eff);
  }
}

}  // namespace hacc::bench
