// Ablation: the gravity substrate — PM solve timings with a per-phase
// breakdown (deposit / forward / green / inverse / gradient / interp) per
// gradient mode, a spectral-vs-fd4-vs-fd6 accuracy table against an
// all-pairs minimum-image reference, the short-range polynomial order sweep
// (the HACC_CUDA_POLY_ORDER design choice), and split-force accuracy.  The
// phase breakdown and accuracy rows are also emitted as BENCH_pm.json so
// later PRs have a perf trajectory to compare against.

#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "gravity/pm.hpp"
#include "gravity/pp_short.hpp"
#include "tree/rcb.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace hacc;
using util::Vec3d;

constexpr double kBox = 25.0;
constexpr int kBreakdownGrid = 128;   // the headline PM solve size
constexpr int kAccuracyParticles = 16 * 16 * 16;

std::vector<Vec3d> random_positions(int n, double box) {
  const util::CounterRng rng(7);
  std::vector<Vec3d> pos(n);
  for (int i = 0; i < n; ++i) {
    pos[i] = {box * rng.uniform(3 * i), box * rng.uniform(3 * i + 1),
              box * rng.uniform(3 * i + 2)};
  }
  return pos;
}

gravity::PmOptions pm_options(int grid, gravity::PmGradient grad) {
  gravity::PmOptions opt;
  opt.grid_n = grid;
  opt.box = kBox;
  opt.r_split = 1.25 * kBox / grid;
  opt.gradient = grad;
  return opt;
}

void BM_PmForces(benchmark::State& state) {
  const int grid = static_cast<int>(state.range(0));
  const auto grad = static_cast<gravity::PmGradient>(state.range(1));
  util::ThreadPool pool;
  gravity::PmSolver pm(pm_options(grid, grad), pool);
  const auto pos = random_positions(4096, kBox);
  const std::vector<double> mass(pos.size(), 1.0);
  std::vector<Vec3d> accel(pos.size());
  for (auto _ : state) {
    pm.compute_forces(pos, mass, accel);
    benchmark::DoNotOptimize(accel.data());
  }
  state.SetLabel("grid " + std::to_string(grid) + "^3 " + to_string(grad));
}
BENCHMARK(BM_PmForces)
    ->Args({16, static_cast<long>(gravity::PmGradient::kSpectral)})
    ->Args({32, static_cast<long>(gravity::PmGradient::kSpectral)})
    ->Args({64, static_cast<long>(gravity::PmGradient::kSpectral)})
    ->Args({64, static_cast<long>(gravity::PmGradient::kFd4)})
    ->Args({128, static_cast<long>(gravity::PmGradient::kSpectral)})
    ->Args({128, static_cast<long>(gravity::PmGradient::kFd4)})
    ->Args({128, static_cast<long>(gravity::PmGradient::kFd6)})
    ->Unit(benchmark::kMillisecond);

void BM_PpShortRange(benchmark::State& state) {
  const auto variant = static_cast<xsycl::CommVariant>(state.range(0));
  const double box = kBox;
  const double rs = 1.0;
  const gravity::PolyShortForce poly(rs, 4.0 * rs);
  const auto pos = random_positions(4096, box);
  std::vector<float> x(pos.size()), y(pos.size()), z(pos.size()), m(pos.size(), 1.f);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    x[i] = float(pos[i].x);
    y[i] = float(pos[i].y);
    z[i] = float(pos[i].z);
  }
  std::vector<float> ax(pos.size()), ay(pos.size()), az(pos.size());
  const tree::RcbTree tr(pos, box, 32);
  const auto pairs = tr.interacting_pairs(poly.r_cut());
  util::ThreadPool pool;
  xsycl::Queue q(pool);
  gravity::PpOptions opt;
  opt.box = float(box);
  opt.softening = 0.05f;
  opt.variant = variant;
  std::uint64_t interactions = 0;
  for (auto _ : state) {
    std::fill(ax.begin(), ax.end(), 0.f);
    std::fill(ay.begin(), ay.end(), 0.f);
    std::fill(az.begin(), az.end(), 0.f);
    const auto stats = run_pp_short(
        q,
        {x.data(), y.data(), z.data(), m.data(), ax.data(), ay.data(), az.data(),
         pos.size()},
        tr, pairs, poly, opt);
    interactions += stats.ops.interactions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(interactions));
  state.SetLabel(std::string("variant ") + to_string(variant));
}
BENCHMARK(BM_PpShortRange)
    ->Arg(static_cast<long>(xsycl::CommVariant::kSelect))
    ->Arg(static_cast<long>(xsycl::CommVariant::kMemoryObject))
    ->Arg(static_cast<long>(xsycl::CommVariant::kBroadcast))
    ->Unit(benchmark::kMillisecond);

void BM_PolyFit(benchmark::State& state) {
  const int order = static_cast<int>(state.range(0));
  for (auto _ : state) {
    gravity::PolyShortForce poly(1.0, 5.0, order);
    benchmark::DoNotOptimize(poly.coefficients().data());
  }
  const gravity::PolyShortForce poly(1.0, 5.0, order);
  state.SetLabel("order " + std::to_string(order) + ", max fit error " +
                 std::to_string(poly.max_abs_error()));
}
BENCHMARK(BM_PolyFit)->DenseRange(2, 7);

// ---------------------------------------------------------------------------
// Figure output: PM phase breakdown + gradient accuracy table + BENCH_pm.json

struct PmRun {
  gravity::PmPhaseTimes times;
  double best_total = 0.0;  // best of the timed repetitions, seconds
};

PmRun time_pm(int grid, gravity::PmGradient grad, util::ThreadPool& pool) {
  gravity::PmSolver pm(pm_options(grid, grad), pool);
  const auto pos = random_positions(4096, kBox);
  const std::vector<double> mass(pos.size(), 1.0);
  std::vector<Vec3d> accel(pos.size());
  PmRun run;
  pm.compute_forces(pos, mass, accel);  // warm-up: sizes the workspace
  run.best_total = 1e30;
  for (int r = 0; r < 3; ++r) {
    const double t0 = util::wtime();
    pm.compute_forces(pos, mass, accel);
    const double dt = util::wtime() - t0;
    if (dt < run.best_total) {
      run.best_total = dt;
      run.times = pm.phase_times();
    }
  }
  return run;
}

struct AccuracyRow {
  double vs_allpairs = 0.0;  // rel RMS of PM+PP total force vs all-pairs
  double vs_spectral = 0.0;  // rel RMS of the PM force vs the spectral PM
};

double rel_rms(const std::vector<Vec3d>& a, const std::vector<Vec3d>& b) {
  double diff = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff += norm2(a[i] - b[i]);
    ref += norm2(b[i]);
  }
  return std::sqrt(diff / ref);
}

// PM(grad)+PP total forces and the bare PM forces for 16^3 random particles.
void gradient_accuracy(util::ThreadPool& pool, AccuracyRow rows[3]) {
  const int grid = 32;
  const auto pos = random_positions(kAccuracyParticles, kBox);
  const std::size_t n = pos.size();
  const std::vector<double> mass(n, 1.0);

  // All-pairs minimum-image Newton: the reference the fmm parity suite uses.
  std::vector<float> x(n), y(n), z(n), m(n, 1.f);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = float(pos[i].x);
    y[i] = float(pos[i].y);
    z[i] = float(pos[i].z);
  }
  std::vector<float> rx(n, 0.f), ry(n, 0.f), rz(n, 0.f);
  const auto newton = gravity::PolyShortForce::newtonian(kBox);
  gravity::reference_pp_short({x.data(), y.data(), z.data(), m.data(), rx.data(),
                               ry.data(), rz.data(), n},
                              newton, float(kBox), 1.0f, 0.f);
  std::vector<Vec3d> allpairs(n);
  for (std::size_t i = 0; i < n; ++i) allpairs[i] = {rx[i], ry[i], rz[i]};

  // Short-range remainder shared by every gradient mode.
  const gravity::PmOptions opt = pm_options(grid, gravity::PmGradient::kSpectral);
  const gravity::PolyShortForce poly(opt.r_split, 5.0 * opt.r_split);
  std::fill(rx.begin(), rx.end(), 0.f);
  std::fill(ry.begin(), ry.end(), 0.f);
  std::fill(rz.begin(), rz.end(), 0.f);
  gravity::reference_pp_short({x.data(), y.data(), z.data(), m.data(), rx.data(),
                               ry.data(), rz.data(), n},
                              poly, float(kBox), 1.0f, 0.f);

  const gravity::PmGradient grads[3] = {gravity::PmGradient::kSpectral,
                                        gravity::PmGradient::kFd4,
                                        gravity::PmGradient::kFd6};
  std::vector<Vec3d> pm_force[3];
  for (int g = 0; g < 3; ++g) {
    gravity::PmSolver pm(pm_options(grid, grads[g]), pool);
    pm_force[g].resize(n);
    pm.compute_forces(pos, mass, pm_force[g]);
    std::vector<Vec3d> total(n);
    for (std::size_t i = 0; i < n; ++i) {
      total[i] = pm_force[g][i] + Vec3d{rx[i], ry[i], rz[i]};
    }
    rows[g].vs_allpairs = rel_rms(total, allpairs);
    rows[g].vs_spectral = g == 0 ? 0.0 : rel_rms(pm_force[g], pm_force[0]);
  }
}

struct ThreadPoint {
  int threads = 1;
  double total_ms = 0.0;  // best spectral 128^3 solve on that pool width
};

void write_bench_json(const PmRun runs[3], const AccuracyRow rows[3],
                      const std::vector<ThreadPoint>& thread_sweep,
                      unsigned threads) {
  const char* path = std::getenv("HACC_BENCH_JSON");
  if (path == nullptr) path = "BENCH_pm.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_gravity: cannot write %s\n", path);
    return;
  }
  const char* names[3] = {"spectral", "fd4", "fd6"};
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"pm_solve\",\n");
  std::fprintf(f, "  \"grid\": %d,\n  \"particles\": 4096,\n  \"box\": %.1f,\n",
               kBreakdownGrid, kBox);
  std::fprintf(f, "  \"threads\": %u,\n", threads);
  std::fprintf(f, "  \"threads_sweep\": [\n");
  for (std::size_t i = 0; i < thread_sweep.size(); ++i) {
    std::fprintf(f, "    {\"threads\": %d, \"spectral_total_ms\": %.3f}%s\n",
                 thread_sweep[i].threads, thread_sweep[i].total_ms,
                 i + 1 < thread_sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"gradients\": {\n");
  for (int g = 0; g < 3; ++g) {
    const auto& t = runs[g].times;
    std::fprintf(f,
                 "    \"%s\": {\"deposit_ms\": %.3f, \"forward_ms\": %.3f, "
                 "\"green_ms\": %.3f, \"inverse_ms\": %.3f, \"gradient_ms\": %.3f, "
                 "\"interp_ms\": %.3f, \"total_ms\": %.3f}%s\n",
                 names[g], t.deposit * 1e3, t.forward * 1e3, t.green * 1e3,
                 t.inverse * 1e3, t.gradient * 1e3, t.interp * 1e3,
                 runs[g].best_total * 1e3, g < 2 ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"accuracy_16cubed_grid32\": {\n");
  std::fprintf(f, "    \"reference\": \"all-pairs minimum-image Newton\",\n");
  for (int g = 0; g < 3; ++g) {
    std::fprintf(f, "    \"%s\": {\"pm_pp_vs_allpairs_rel_rms\": %.3e, "
                 "\"pm_vs_spectral_rel_rms\": %.3e}%s\n",
                 names[g], rows[g].vs_allpairs, rows[g].vs_spectral,
                 g < 2 ? "," : "");
  }
  // The pre-refactor PM solve at the same size on the same machine, injected
  // by whoever runs the bench for the record (not measurable from this
  // binary once the old path is gone).
  if (const char* base = std::getenv("HACC_PM_BASELINE_128_MS")) {
    const double base_ms = std::atof(base);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"baseline_pre_pr_ms\": %.1f,\n", base_ms);
    std::fprintf(f, "  \"speedup_vs_baseline\": {");
    for (int g = 0; g < 3; ++g) {
      std::fprintf(f, "\"%s\": %.2f%s", names[g],
                   base_ms / (runs[g].best_total * 1e3), g < 2 ? ", " : "");
    }
    std::fprintf(f, "}\n");
  } else {
    std::fprintf(f, "  }\n");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

void print_summary() {
  util::ThreadPool pool;

  hacc::bench::print_header("PM solve: phase breakdown (grid 128^3, 4096 particles)");
  PmRun runs[3];
  const gravity::PmGradient grads[3] = {gravity::PmGradient::kSpectral,
                                        gravity::PmGradient::kFd4,
                                        gravity::PmGradient::kFd6};
  std::printf("%-9s %9s %9s %9s %9s %9s %9s %10s\n", "gradient", "deposit",
              "forward", "green", "inverse", "fd-grad", "interp", "total ms");
  for (int g = 0; g < 3; ++g) {
    runs[g] = time_pm(kBreakdownGrid, grads[g], pool);
    const auto& t = runs[g].times;
    std::printf("%-9s %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %10.2f\n",
                to_string(grads[g]), t.deposit * 1e3, t.forward * 1e3,
                t.green * 1e3, t.inverse * 1e3, t.gradient * 1e3, t.interp * 1e3,
                runs[g].best_total * 1e3);
  }
  std::printf("\nspectral runs 1 r2c + 4 c2r half-spectrum transforms; fd4/fd6 run\n"
              "1 r2c + 1 c2r + a finite-difference gradient (the one-FFT path).\n");

  hacc::bench::print_header("PM gradient accuracy (16^3 particles, grid 32^3)");
  AccuracyRow rows[3];
  gradient_accuracy(pool, rows);
  std::printf("%-9s %26s %24s\n", "gradient", "PM+PP vs all-pairs relRMS",
              "PM vs spectral relRMS");
  for (int g = 0; g < 3; ++g) {
    std::printf("%-9s %26.3e %24.3e\n", to_string(grads[g]), rows[g].vs_allpairs,
                rows[g].vs_spectral);
  }

  hacc::bench::print_header("PM solve thread scaling (grid 128^3, spectral)");
  std::vector<ThreadPoint> thread_sweep;
  for (const int n_threads : {1, 2, 4, 8}) {
    util::ThreadPool tp(static_cast<unsigned>(n_threads));
    ThreadPoint pt;
    pt.threads = n_threads;
    pt.total_ms =
        1e3 * time_pm(kBreakdownGrid, gravity::PmGradient::kSpectral, tp)
                  .best_total;
    thread_sweep.push_back(pt);
    std::printf("%d threads: %.2f ms\n", pt.threads, pt.total_ms);
  }

  write_bench_json(runs, rows, thread_sweep, pool.size());

  hacc::bench::print_header("Gravity ablation: polynomial split-force accuracy");
  const gravity::SplitForce split(1.0);
  std::printf("%-7s %18s\n", "order", "max |poly - l(r)|");
  for (int order = 2; order <= 7; ++order) {
    const gravity::PolyShortForce poly(1.0, 5.0, order);
    std::printf("%-7d %18.3e\n", order, poly.max_abs_error());
  }
  std::printf("\nHACC ships HACC_CUDA_POLY_ORDER=5 (paper Appendix A); at order 5 the\n"
              "fit error is <1%% of the profile peak (%.3e).\n",
              split.long_profile(0.0));
}

}  // namespace

HACC_BENCH_MAIN(print_summary)
