// Ablation: the gravity substrate — PM grid sweep, short-range polynomial
// order sweep (the HACC_CUDA_POLY_ORDER design choice), and split-force
// accuracy.

#include <vector>

#include "bench_common.hpp"
#include "gravity/pm.hpp"
#include "gravity/pp_short.hpp"
#include "tree/rcb.hpp"
#include "util/rng.hpp"

namespace {

using namespace hacc;
using util::Vec3d;

std::vector<Vec3d> random_positions(int n, double box) {
  const util::CounterRng rng(7);
  std::vector<Vec3d> pos(n);
  for (int i = 0; i < n; ++i) {
    pos[i] = {box * rng.uniform(3 * i), box * rng.uniform(3 * i + 1),
              box * rng.uniform(3 * i + 2)};
  }
  return pos;
}

void BM_PmForces(benchmark::State& state) {
  const int grid = static_cast<int>(state.range(0));
  const double box = 25.0;
  util::ThreadPool pool;
  gravity::PmOptions opt;
  opt.grid_n = grid;
  opt.box = box;
  opt.r_split = 1.25 * box / grid;
  gravity::PmSolver pm(opt, pool);
  const auto pos = random_positions(4096, box);
  const std::vector<double> mass(pos.size(), 1.0);
  std::vector<Vec3d> accel(pos.size());
  for (auto _ : state) {
    pm.compute_forces(pos, mass, accel);
    benchmark::DoNotOptimize(accel.data());
  }
  state.SetLabel("grid " + std::to_string(grid) + "^3");
}
BENCHMARK(BM_PmForces)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_PpShortRange(benchmark::State& state) {
  const auto variant = static_cast<xsycl::CommVariant>(state.range(0));
  const double box = 25.0;
  const double rs = 1.0;
  const gravity::PolyShortForce poly(rs, 4.0 * rs);
  const auto pos = random_positions(4096, box);
  std::vector<float> x(pos.size()), y(pos.size()), z(pos.size()), m(pos.size(), 1.f);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    x[i] = float(pos[i].x);
    y[i] = float(pos[i].y);
    z[i] = float(pos[i].z);
  }
  std::vector<float> ax(pos.size()), ay(pos.size()), az(pos.size());
  const tree::RcbTree tr(pos, box, 32);
  const auto pairs = tr.interacting_pairs(poly.r_cut());
  util::ThreadPool pool;
  xsycl::Queue q(pool);
  gravity::PpOptions opt;
  opt.box = float(box);
  opt.softening = 0.05f;
  opt.variant = variant;
  std::uint64_t interactions = 0;
  for (auto _ : state) {
    std::fill(ax.begin(), ax.end(), 0.f);
    std::fill(ay.begin(), ay.end(), 0.f);
    std::fill(az.begin(), az.end(), 0.f);
    const auto stats = run_pp_short(
        q,
        {x.data(), y.data(), z.data(), m.data(), ax.data(), ay.data(), az.data(),
         pos.size()},
        tr, pairs, poly, opt);
    interactions += stats.ops.interactions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(interactions));
  state.SetLabel(std::string("variant ") + to_string(variant));
}
BENCHMARK(BM_PpShortRange)
    ->Arg(static_cast<long>(xsycl::CommVariant::kSelect))
    ->Arg(static_cast<long>(xsycl::CommVariant::kMemoryObject))
    ->Arg(static_cast<long>(xsycl::CommVariant::kBroadcast))
    ->Unit(benchmark::kMillisecond);

void BM_PolyFit(benchmark::State& state) {
  const int order = static_cast<int>(state.range(0));
  for (auto _ : state) {
    gravity::PolyShortForce poly(1.0, 5.0, order);
    benchmark::DoNotOptimize(poly.coefficients().data());
  }
  const gravity::PolyShortForce poly(1.0, 5.0, order);
  state.SetLabel("order " + std::to_string(order) + ", max fit error " +
                 std::to_string(poly.max_abs_error()));
}
BENCHMARK(BM_PolyFit)->DenseRange(2, 7);

void print_summary() {
  hacc::bench::print_header("Gravity ablation: polynomial split-force accuracy");
  const gravity::SplitForce split(1.0);
  std::printf("%-7s %18s\n", "order", "max |poly - l(r)|");
  for (int order = 2; order <= 7; ++order) {
    const gravity::PolyShortForce poly(1.0, 5.0, order);
    std::printf("%-7d %18.3e\n", order, poly.max_abs_error());
  }
  std::printf("\nHACC ships HACC_CUDA_POLY_ORDER=5 (paper Appendix A); at order 5 the\n"
              "fit error is <1%% of the profile peak (%.3e).\n",
              split.long_profile(0.0));
}

}  // namespace

HACC_BENCH_MAIN(print_summary)
