#pragma once

// Shared plumbing for the per-figure benchmark binaries: each binary runs
// its google-benchmark cases, then prints the paper table/figure data it
// regenerates.  The custom main keeps the figure output at the end of the
// log, after the timing table.

#include <benchmark/benchmark.h>

#include <cstdio>

#define HACC_BENCH_MAIN(print_figure)                                \
  int main(int argc, char** argv) {                                  \
    benchmark::Initialize(&argc, argv);                              \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();                             \
    benchmark::Shutdown();                                           \
    print_figure();                                                  \
    return 0;                                                        \
  }

namespace hacc::bench {

inline void print_rule(char c = '-', int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void print_header(const char* title) {
  print_rule('=');
  std::printf("%s\n", title);
  print_rule('=');
}

}  // namespace hacc::bench
