// Figure 12: the cascade plot — application efficiency and performance
// portability of the CRK-HACC configurations.  Efficiency is relative to a
// hypothetical application using the best version of each kernel on every
// platform, irrespective of source language (§6.1).

#include "bench_common.hpp"
#include "metrics/cascade.hpp"
#include "platform/study.hpp"

namespace {

using namespace hacc;

platform::PortabilityStudy& study() {
  static platform::PortabilityStudy s;
  return s;
}

void BM_CascadeAssembly(benchmark::State& state) {
  auto& s = study();
  for (auto _ : state) {
    for (const auto c : platform::paper_configurations()) {
      auto eff = s.app_efficiencies(c);
      auto cascade = metrics::make_cascade(eff);
      benchmark::DoNotOptimize(cascade);
    }
  }
}
BENCHMARK(BM_CascadeAssembly);

void print_fig() {
  bench::print_header(
      "Figure 12: cascade plot — application efficiency and performance\n"
      "portability of CRK-HACC variants");
  std::printf("%-26s %7s   platform efficiencies (descending) | cumulative PP\n",
              "configuration", "PP");
  for (const auto c : platform::paper_configurations()) {
    const auto eff = study().app_efficiencies(c);
    const auto cascade = metrics::make_cascade(eff);
    std::printf("%-26s %7.3f  ", to_string(c), cascade.final_pp);
    for (const auto& [name, e] : cascade.ordered) {
      std::printf(" %c=%.2f", name[0], e);  // A=Aurora, F=Frontier, P=Polaris
    }
    std::printf("  |");
    for (const double pp : cascade.cumulative_pp) std::printf(" %.2f", pp);
    std::printf("\n");
  }
  std::printf(
      "\nPaper anchors (§6.1): Broadcast 0.44; Memory(Object) 0.79; Unified 0.90;\n"
      "Select+Memory 0.91; Select+vISA 0.96; CUDA/HIP and vISA alone 0 (missing\n"
      "platforms).  Mixing variants beats any single-variant configuration.\n");
}

}  // namespace

HACC_BENCH_MAIN(print_fig)
