// Figure 13: the navigation chart — performance portability against code
// convergence (1 - code divergence).  Convergence comes from the mini Code
// Base Investigator classifying the miniature CRK-HACC tree under each
// configuration's per-platform define sets; PP comes from the portability
// study.

#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "metrics/cbi/classifier.hpp"
#include "minihacc_tree.hpp"
#include "platform/study.hpp"

namespace {

using namespace hacc;
using metrics::cbi::Configuration;

platform::PortabilityStudy& study() {
  static platform::PortabilityStudy s;
  return s;
}

// The per-platform build configurations each Fig. 12 entry ships.
std::vector<Configuration> platform_configs(platform::AppConfig c) {
  using platform::AppConfig;
  const metrics::cbi::DefineMap select = {{"HACC_SYCL", "1"}, {"HACC_COMM_SELECT", "1"}};
  const metrics::cbi::DefineMap memory = {{"HACC_SYCL", "1"}, {"HACC_COMM_MEMORY", "1"}};
  const metrics::cbi::DefineMap broadcast = {{"HACC_SYCL", "1"},
                                             {"HACC_COMM_BROADCAST", "1"}};
  const metrics::cbi::DefineMap visa = {{"HACC_SYCL", "1"}, {"HACC_COMM_VISA", "1"}};
  const metrics::cbi::DefineMap cuda = {{"HACC_CUDA", "1"}};
  const metrics::cbi::DefineMap hip = {{"HACC_HIP", "1"}};
  switch (c) {
    case AppConfig::kCudaHipFastMath:
      return {{"Polaris", cuda}, {"Frontier", hip}};
    case AppConfig::kSyclBroadcast:
      return {{"Polaris", broadcast}, {"Frontier", broadcast}, {"Aurora", broadcast}};
    case AppConfig::kSyclMemory32:
    case AppConfig::kSyclMemoryObject:
      return {{"Polaris", memory}, {"Frontier", memory}, {"Aurora", memory}};
    case AppConfig::kSyclSelect:
      return {{"Polaris", select}, {"Frontier", select}, {"Aurora", select}};
    case AppConfig::kSyclVisa:
      return {{"Aurora", visa}};
    case AppConfig::kSyclSelectMemory:
      return {{"Polaris", select}, {"Frontier", select}, {"Aurora", memory}};
    case AppConfig::kSyclSelectVisa:
      return {{"Polaris", select}, {"Frontier", select}, {"Aurora", visa}};
    case AppConfig::kUnifiedFastMath:
      return {{"Polaris", cuda}, {"Frontier", hip}, {"Aurora", memory}};
  }
  return {};
}

double convergence_of(platform::AppConfig c) {
  const auto files = bench::minihacc_tree();
  const auto configs = platform_configs(c);
  const auto tree = metrics::cbi::classify_tree(files, configs);
  return tree.convergence(static_cast<int>(configs.size()));
}

void BM_TreeClassification(benchmark::State& state) {
  const auto files = bench::minihacc_tree();
  const auto configs = bench::minihacc_configs();
  for (auto _ : state) {
    auto tree = metrics::cbi::classify_tree(files, configs);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_TreeClassification);

void print_fig() {
  bench::print_header(
      "Figure 13: navigation chart — performance portability vs code convergence");
  std::printf("%-26s %12s %8s\n", "configuration", "convergence", "PP");
  for (const auto c : platform::paper_configurations()) {
    const double conv = convergence_of(c);
    const double pp = study().app_efficiencies(c).pp();
    std::printf("%-26s %12.3f %8.3f\n", to_string(c), conv, pp);
  }
  std::printf(
      "\nPaper anchors (§6.2): the specialized SYCL variants sit at convergence\n"
      "~1.0 (19-line Select/Memory delta; +226 vISA lines); only the Unified\n"
      "CUDA/HIP+SYCL configuration drops visibly (0.83): two versions of every\n"
      "kernel.  High PP does NOT require high divergence.\n");
}

}  // namespace

HACC_BENCH_MAIN(print_fig)
