#pragma once

// A synthetic miniature of CRK-HACC's source organization, used by the
// Table 2 and Fig. 13 benchmarks.  The real code base is restricted, so
// this tree reproduces its GUARD STRUCTURE and the relative proportions of
// Table 2's categories at 1/8 scale, with the fine-grained variant deltas
// (19 lines between Select and Memory; +226 lines of inline vISA) kept at
// their absolute paper sizes:
//
//   All            43,862 SLOC -> 5,483     HIP and CUDA  6,806 -> 851
//   SYCL           11,292 -> 1,412          CUDA          1,096 -> 137
//   SYCL(-Bcast)    1,470 -> 184            HIP             116 -> 15
//   Broadcast       1,511 -> 189            vISA            226 -> 226 (absolute)
//   Unused         18,721 -> 2,340          Select vs Memory delta: 10 + 9
//
// Lines are generated filler ("state_<i> = ...") — what matters to the
// classifier and the divergence metric is which configuration compiles
// each line, not what the line says.

#include <string>
#include <vector>

#include "metrics/cbi/classifier.hpp"

namespace hacc::bench {

inline std::string filler(const std::string& tag, int n) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    out += "float " + tag + "_" + std::to_string(i) + " = kState[" +
           std::to_string(i) + "];\n";
  }
  return out;
}

inline std::vector<metrics::cbi::SourceFile> minihacc_tree() {
  using metrics::cbi::SourceFile;
  std::vector<SourceFile> files;

  // Host-side driver + long-range solver: shared by every implementation.
  files.push_back({"host/driver.cpp", filler("host", 3000)});
  files.push_back({"host/poisson_fft.cpp", filler("fft", 2483)});

  // CUDA kernels with the HIP wrapper macros (§3.1).
  {
    std::string s;
    s += "#if defined(HACC_CUDA) || defined(HACC_HIP)\n";
    s += filler("warp_kernels", 851);  // "HIP and CUDA"
    s += "#ifdef HACC_CUDA\n" + filler("cuda_only", 137) + "#endif\n";
    s += "#ifdef HACC_HIP\n" + filler("hip_wrapper", 15) + "#endif\n";
    s += "#endif\n";
    files.push_back({"kernels/cuda/short_range.cu", std::move(s)});
  }

  // SYCL kernels produced by the migration pipeline.
  {
    std::string s;
    s += "#ifdef HACC_SYCL\n";
    // Functor declarations: one kernel argument per line (§6.2 notes these
    // inflate the SYCL line count relative to CUDA).
    s += filler("functor_args", 1412);  // "SYCL"
    // Kernel bodies shared by the non-restructured variants.
    s += "#ifndef HACC_COMM_BROADCAST\n" + filler("halfwarp_body", 184) + "#endif\n";
    // The restructured broadcast kernels (§5.3.2): almost completely
    // separate from the other implementations.
    s += "#ifdef HACC_COMM_BROADCAST\n" + filler("broadcast_body", 189) + "#endif\n";
    // Select <-> local-memory: a one-macro swap, 19 lines total delta.
    s += "#if defined(HACC_COMM_SELECT) || defined(HACC_COMM_VISA)\n" +
         filler("select_exchange", 10) + "#endif\n";
    s += "#ifdef HACC_COMM_MEMORY\n" + filler("slm_exchange", 9) + "#endif\n";
    // Inline vISA butterfly shuffle: +226 lines, Intel only (§5.3.3).
    s += "#ifdef HACC_COMM_VISA\n" + filler("visa_butterfly", 226) + "#endif\n";
    s += "#endif\n";
    files.push_back({"kernels/sycl/short_range.cpp", std::move(s)});
  }

  // Sub-grid physics disabled in adiabatic mode: Table 2's "Unused" lines.
  {
    std::string s;
    s += "#ifdef HACC_SUBGRID_PHYSICS\n";
    s += filler("agn_feedback", 1200);
    s += filler("star_formation", 1140);
    s += "#endif\n";
    files.push_back({"kernels/subgrid/feedback.cpp", std::move(s)});
  }

  return files;
}

// The six build configurations of the Table 2 breakdown.
inline std::vector<metrics::cbi::Configuration> minihacc_configs() {
  using metrics::cbi::Configuration;
  return {
      Configuration{"CUDA", {{"HACC_CUDA", "1"}}},
      Configuration{"HIP", {{"HACC_HIP", "1"}}},
      Configuration{"SYCL-Select", {{"HACC_SYCL", "1"}, {"HACC_COMM_SELECT", "1"}}},
      Configuration{"SYCL-Memory", {{"HACC_SYCL", "1"}, {"HACC_COMM_MEMORY", "1"}}},
      Configuration{"SYCL-Broadcast",
                    {{"HACC_SYCL", "1"}, {"HACC_COMM_BROADCAST", "1"}}},
      Configuration{"SYCL-vISA", {{"HACC_SYCL", "1"}, {"HACC_COMM_VISA", "1"}}},
  };
}

}  // namespace hacc::bench
