#!/usr/bin/env python3
"""Self-tests for tools/hacc_lint.py (stdlib unittest; pytest-compatible).

Run with either:
  python3 tools/test_hacc_lint.py
  python3 -m pytest tools/test_hacc_lint.py
"""

from __future__ import annotations

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import hacc_lint  # noqa: E402


def lint_source(name: str, text: str) -> list[str]:
    """Lint a single in-memory file; return `[rule, ...]` of its findings."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        findings = hacc_lint.lint_file(path, Path(tmp))
        return [f.rule for f in findings]


class NondeterminismRule(unittest.TestCase):
    def test_rand_flagged(self):
        self.assertIn("nondeterminism", lint_source("a.cpp", "int x = rand();\n"))

    def test_srand_and_time_flagged(self):
        rules = lint_source("a.cpp", "srand(time(nullptr));\n")
        self.assertEqual(rules.count("nondeterminism"), 2)

    def test_random_device_flagged(self):
        self.assertIn("nondeterminism",
                      lint_source("a.cpp", "std::random_device rd;\n"))

    def test_wtime_not_flagged(self):
        # `wtime(` must not trip the `time(` pattern.
        self.assertEqual(lint_source("a.cpp", "double t = wtime();\n"), [])

    def test_steady_clock_not_flagged(self):
        self.assertEqual(
            lint_source("a.cpp", "auto t = std::chrono::steady_clock::now();\n"), [])

    def test_rand_in_comment_ignored(self):
        self.assertEqual(lint_source("a.cpp", "// uses rand() upstream\n"), [])

    def test_rand_in_string_ignored(self):
        self.assertEqual(lint_source("a.cpp", 'auto s = "rand()";\n'), [])


class NoCoutRule(unittest.TestCase):
    def test_cout_flagged(self):
        self.assertIn("no-cout", lint_source("a.cpp", 'std::cout << "hi";\n'))

    def test_std_printf_flagged(self):
        self.assertIn("no-cout", lint_source("a.cpp", 'std::printf("x");\n'))

    def test_bare_printf_flagged(self):
        self.assertIn("no-cout", lint_source("a.cpp", 'printf("x");\n'))

    def test_fprintf_flagged(self):
        self.assertIn("no-cout",
                      lint_source("a.cpp", 'fprintf(stderr, "x");\n'))

    def test_snprintf_not_flagged(self):
        # Formatting into a buffer writes no output.
        self.assertEqual(
            lint_source("a.cpp", "std::snprintf(buf, sizeof(buf), \"%d\", i);\n"), [])

    def test_ostringstream_not_flagged(self):
        self.assertEqual(lint_source("a.cpp", "std::ostringstream os; os << x;\n"), [])


class SharedCommentRule(unittest.TestCase):
    def test_uncommented_parallel_for_flagged(self):
        self.assertIn("shared-comment",
                      lint_source("a.cpp", "pool.parallel_for(n, body);\n"))

    def test_commented_parallel_for_clean(self):
        src = "// shared: hits[i], disjoint per index\npool.parallel_for(n, body);\n"
        self.assertEqual(lint_source("a.cpp", src), [])

    def test_comment_within_window_clean(self):
        src = "// shared: acc, per-chunk private then merged\n" + "\n" * 8 + \
              "pool->parallel_for_chunks(n, c, body);\n"
        self.assertEqual(lint_source("a.cpp", src), [])

    def test_comment_outside_window_flagged(self):
        src = "// shared: too far away\n" + "\n" * 30 + "pool.parallel_for(n, b);\n"
        self.assertIn("shared-comment", lint_source("a.cpp", src))

    def test_declaration_not_flagged(self):
        # Member declarations / qualified definitions are not launch sites.
        src = ("void parallel_for(std::int64_t n, F f);\n"
               "void ThreadPool::parallel_for(std::int64_t n, F f) {}\n")
        self.assertEqual(lint_source("a.cpp", src), [])


class NolintRule(unittest.TestCase):
    def test_bare_nolint_flagged(self):
        self.assertIn("nolint-justified",
                      lint_source("a.cpp", "foo();  // NOLINT\n"))

    def test_check_without_reason_flagged(self):
        self.assertIn("nolint-justified",
                      lint_source("a.cpp", "foo();  // NOLINT(bugprone-foo)\n"))

    def test_justified_nolint_clean(self):
        src = "foo();  // NOLINT(bugprone-foo): third-party API shape\n"
        self.assertEqual(lint_source("a.cpp", src), [])

    def test_justified_nolintnextline_clean(self):
        src = "// NOLINTNEXTLINE(google-explicit-constructor): view type\nA(B b);\n"
        self.assertEqual(lint_source("a.cpp", src), [])

    def test_prose_mention_not_flagged(self):
        # "// NOLINT below: ..." is commentary, not an active suppression.
        self.assertEqual(
            lint_source("a.cpp", "// NOLINT below: justified at the call.\n"), [])


class SpanNameRule(unittest.TestCase):
    def test_dotted_span_name_clean(self):
        self.assertEqual(
            lint_source("a.cpp", 'const obs::TraceSpan span("pm.deposit");\n'), [])

    def test_subphase_span_name_clean(self):
        self.assertEqual(
            lint_source("a.cpp", 'const obs::TraceSpan span("fft.r2c_z");\n'), [])

    def test_undotted_span_name_flagged(self):
        self.assertIn("span-name",
                      lint_source("a.cpp", 'obs::TraceSpan span("deposit");\n'))

    def test_uppercase_span_name_flagged(self):
        self.assertIn("span-name",
                      lint_source("a.cpp", 'obs::TraceSpan span("PM.Deposit");\n'))

    def test_tracer_record_literal_checked(self):
        src = 'obs::Tracer::global().record("bad name", t0, t1);\n'
        self.assertIn("span-name", lint_source("a.cpp", src))

    def test_tracer_record_good_literal_clean(self):
        src = 'obs::Tracer::global().record("pm.forward", t0, t1);\n'
        self.assertEqual(lint_source("a.cpp", src), [])

    def test_tracer_intern_literal_checked(self):
        self.assertIn("span-name",
                      lint_source("a.cpp", 'tracer.intern("Kernel");\n'))

    def test_dynamic_name_not_flagged(self):
        # Runtime-built names are out of a text lint's reach by design.
        src = 'tracer.intern("xsycl." + kernel_name);\n'
        self.assertEqual(lint_source("a.cpp", src), [])

    def test_commented_span_ignored(self):
        self.assertEqual(
            lint_source("a.cpp", '// e.g. obs::TraceSpan span("Bad Name");\n'), [])

    def test_null_span_not_flagged(self):
        self.assertEqual(
            lint_source("a.cpp", "const obs::TraceSpan span(nullptr);\n"), [])


class HeaderHygieneRule(unittest.TestCase):
    def test_missing_pragma_once_flagged(self):
        self.assertIn("header-hygiene", lint_source("a.hpp", "int f();\n"))

    def test_pragma_once_clean(self):
        self.assertEqual(lint_source("a.hpp", "#pragma once\nint f();\n"), [])

    def test_using_namespace_in_header_flagged(self):
        src = "#pragma once\nusing namespace std;\n"
        self.assertIn("header-hygiene", lint_source("a.hpp", src))

    def test_using_namespace_in_cpp_allowed(self):
        self.assertEqual(lint_source("a.cpp", "using namespace std;\n"), [])

    def test_using_declaration_allowed(self):
        # `using std::swap;` is fine; only `using namespace` leaks wholesale.
        self.assertEqual(
            lint_source("a.hpp", "#pragma once\nusing std::swap;\n"), [])


class AllowlistBehavior(unittest.TestCase):
    def run_lint(self, files: dict[str, str], allowlist: str) -> tuple[int, str]:
        import contextlib
        import io
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "tools").mkdir()
            (root / "tools" / "lint_allowlist.txt").write_text(allowlist)
            src = root / "src"
            for name, text in files.items():
                p = src / name
                p.parent.mkdir(parents=True, exist_ok=True)
                p.write_text(text)
            out = io.StringIO()
            real_root = hacc_lint.Path(hacc_lint.__file__).resolve().parent.parent
            # Point the linter at the sandbox root via explicit arguments.
            entries, findings = hacc_lint.load_allowlist(
                root / "tools" / "lint_allowlist.txt", root)
            for f in hacc_lint.collect_files([src]):
                findings.extend(hacc_lint.lint_file(f, root))
            findings = hacc_lint.apply_allowlist(
                findings, entries, "tools/lint_allowlist.txt")
            with contextlib.redirect_stdout(out):
                for f in findings:
                    print(f)
            del real_root
            return len(findings), out.getvalue()

    def test_allowlisted_finding_suppressed(self):
        n, _ = self.run_lint(
            {"writer.cpp": 'std::cout << "report";\n'},
            "src/writer.cpp | no-cout | designated writer\n")
        self.assertEqual(n, 0)

    def test_stale_entry_is_an_error(self):
        n, out = self.run_lint(
            {"clean.cpp": "int x = 1;\n"},
            "src/clean.cpp | no-cout | nothing matches this anymore\n")
        self.assertEqual(n, 1)
        self.assertIn("stale entry", out)

    def test_missing_justification_is_an_error(self):
        n, out = self.run_lint(
            {"writer.cpp": 'std::cout << "x";\n'},
            "src/writer.cpp | no-cout |\n")
        self.assertEqual(n, 2)  # malformed entry + the unsuppressed finding
        self.assertIn("malformed entry", out)

    def test_wrong_rule_does_not_suppress(self):
        n, _ = self.run_lint(
            {"writer.cpp": 'std::cout << "x";\n'},
            "src/writer.cpp | nondeterminism | wrong rule on purpose\n")
        self.assertEqual(n, 2)  # the finding survives + the entry goes stale


class CommentStripping(unittest.TestCase):
    def test_block_comment_spanning_lines(self):
        src = "/* rand() in a\n   block comment */\nint x;\n"
        self.assertEqual(lint_source("a.cpp", src), [])

    def test_code_after_block_comment_end_still_scanned(self):
        src = "/* comment */ int x = rand();\n"
        self.assertIn("nondeterminism", lint_source("a.cpp", src))

    def test_escaped_quote_in_string(self):
        src = 'auto s = "he said \\"rand()\\" loudly";\n'
        self.assertEqual(lint_source("a.cpp", src), [])


if __name__ == "__main__":
    unittest.main()
