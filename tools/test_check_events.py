#!/usr/bin/env python3
"""Self-tests for tools/check_events.py (stdlib unittest; pytest-compatible).

Run with either:
  python3 tools/test_check_events.py
  python3 -m pytest tools/test_check_events.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import check_events  # noqa: E402


def metrics_snapshot(**overrides) -> dict:
    m = {key: 0 for key in check_events.REQUIRED_STEP_METRICS}
    m.update(overrides)
    return m


def event(etype: str, step: int, **extra) -> dict:
    base = {"type": etype, "step": step}
    defaults = {
        "begin": {"scenario": "t", "backend": "pm+pp", "mode": "fixed",
                  "hydro": True, "restart": False},
        "init": {"a": 0.02},
        "restart": {"a": 0.02, "z": 49.0, "file": "ck.step2"},
        "step": {"a": 0.03, "z": 32.3, "da": 0.01, "wall_s": 0.5, "ke": 1.0,
                 "metrics": metrics_snapshot()},
        "checkpoint": {"a": 0.03, "file": "ck.step2", "bytes": 4096,
                       "write_s": 0.01, "crc": "ok"},
        "ckpt_validate": {"file": "ck.step2", "status": "ok", "detail": ""},
        "recovery": {"file": "ck.step2", "recovered_from": 2, "candidates": 2},
        "error": {"what": "checkpoint", "file": "ck.step2",
                  "status": "open_failed", "detail": "no such directory"},
        "ckpt_prune": {"file": "ck.step1", "pruned_step": 1},
        "output": {"a": 0.03, "z": 32.3, "n_halos": 4, "largest_halo": 32},
        "run_summary": {"metrics": metrics_snapshot()},
        "end": {"steps": 2, "total_steps": 2, "a": 0.04, "z": 24.0,
                "wall_s": 1.0, "checkpoints": 1},
    }
    base.update(defaults.get(etype, {}))
    base.update(extra)
    return base


def valid_stream() -> list[dict]:
    return [
        event("begin", 0),
        event("init", 0),
        event("step", 1),
        event("checkpoint", 2),
        event("step", 2),
        event("run_summary", 2),
        event("end", 2),
    ]


def check_lines(events: list) -> list[str]:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.jsonl"
        path.write_text(
            "".join(json.dumps(e) + "\n" for e in events), encoding="utf-8")
        return check_events.check_jsonl(path)


def check_trace_obj(trace, min_threads=1, min_workers=0,
                    assert_overlap=None) -> list[str]:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.json"
        path.write_text(json.dumps(trace), encoding="utf-8")
        return check_events.check_trace(path, min_threads, min_workers,
                                        assert_overlap)


def lane_meta(tid: int, name: str) -> dict:
    return {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": name}}


def span(tid: int, name: str, ts=0.0, dur=1.0) -> dict:
    return {"name": name, "cat": "hacc", "ph": "X", "ts": ts, "dur": dur,
            "pid": 1, "tid": tid}


class JsonlStream(unittest.TestCase):
    def test_valid_stream_passes(self):
        self.assertEqual(check_lines(valid_stream()), [])

    def test_restart_stream_passes(self):
        events = valid_stream()
        events[1] = event("restart", 2)
        self.assertEqual(check_lines(events), [])

    def test_recovery_scan_prelude_passes(self):
        # `--restart auto`: validation verdicts and the recovery record sit
        # between `begin` and the `restart` that starts the run.
        events = valid_stream()
        events[1:2] = [
            event("ckpt_validate", 4, status="crc_mismatch"),
            event("ckpt_validate", 2),
            event("recovery", 2),
            event("restart", 2),
        ]
        self.assertEqual(check_lines(events), [])

    def test_fresh_start_recovery_prelude_passes(self):
        events = valid_stream()
        events[1:1] = [event("recovery", 0, recovered_from=-1, candidates=0)]
        self.assertEqual(check_lines(events), [])

    def test_missing_start_after_recovery_scan_flagged(self):
        events = valid_stream()
        events[1] = event("recovery", 2)  # scan verdicts but no init/restart
        problems = check_lines(events)
        self.assertTrue(any('"init" or "restart"' in p for p in problems))

    def test_checkpoint_missing_crc_flagged(self):
        events = valid_stream()
        del events[3]["crc"]
        problems = check_lines(events)
        self.assertTrue(any('missing "crc"' in p for p in problems))

    def test_ckpt_validate_missing_status_flagged(self):
        events = valid_stream()
        events[1:2] = [event("ckpt_validate", 2), event("init", 0)]
        del events[1]["status"]
        problems = check_lines(events)
        self.assertTrue(any('missing "status"' in p for p in problems))

    def test_error_event_missing_what_flagged(self):
        events = valid_stream()
        bad = event("error", 2)
        del bad["what"]
        events.insert(4, bad)
        problems = check_lines(events)
        self.assertTrue(any('missing "what"' in p for p in problems))

    def test_prune_event_missing_pruned_step_flagged(self):
        events = valid_stream()
        bad = event("ckpt_prune", 2)
        del bad["pruned_step"]
        events.insert(4, bad)
        problems = check_lines(events)
        self.assertTrue(any('missing "pruned_step"' in p for p in problems))

    def test_new_checkpoint_metrics_required(self):
        events = valid_stream()
        del events[2]["metrics"]["ckpt.recovered_from"]
        problems = check_lines(events)
        self.assertTrue(
            any('missing "ckpt.recovered_from"' in p for p in problems))

    def test_invalid_json_line_flagged(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "run.jsonl"
            path.write_text('{"type":"begin","step":0\n', encoding="utf-8")
            problems = check_events.check_jsonl(path)
        self.assertTrue(any("not valid JSON" in p for p in problems))

    def test_missing_type_flagged(self):
        events = valid_stream()
        del events[2]["type"]
        problems = check_lines(events)
        self.assertTrue(any('"type"' in p for p in problems))

    def test_missing_step_flagged(self):
        events = valid_stream()
        del events[2]["step"]
        problems = check_lines(events)
        self.assertTrue(any('integer "step"' in p for p in problems))

    def test_step_without_metrics_flagged(self):
        events = valid_stream()
        del events[2]["metrics"]
        problems = check_lines(events)
        self.assertTrue(any('missing "metrics"' in p for p in problems))

    def test_missing_metric_key_flagged(self):
        events = valid_stream()
        del events[2]["metrics"]["tree.builds"]
        problems = check_lines(events)
        self.assertTrue(any('missing "tree.builds"' in p for p in problems))

    def test_non_numeric_metric_flagged(self):
        events = valid_stream()
        events[2]["metrics"]["ops.launches"] = "three"
        problems = check_lines(events)
        self.assertTrue(any("not a number" in p for p in problems))

    def test_missing_begin_flagged(self):
        problems = check_lines(valid_stream()[1:])
        self.assertTrue(any('open with "begin"' in p for p in problems))

    def test_missing_run_summary_flagged(self):
        events = valid_stream()
        del events[-2]
        problems = check_lines(events)
        self.assertTrue(any('"run_summary"' in p for p in problems))

    def test_missing_end_flagged(self):
        problems = check_lines(valid_stream()[:-1])
        self.assertTrue(any('close with "end"' in p for p in problems))

    def test_step_numbering_gap_flagged(self):
        events = valid_stream()
        events[4]["step"] = 5  # 1 then 5
        problems = check_lines(events)
        self.assertTrue(any("jump from 1 to 5" in p for p in problems))

    def test_checkpoint_missing_bytes_flagged(self):
        events = valid_stream()
        del events[3]["bytes"]
        problems = check_lines(events)
        self.assertTrue(any('missing "bytes"' in p for p in problems))

    def test_empty_file_flagged(self):
        problems = check_lines([])
        self.assertTrue(any("no events" in p for p in problems))


class ChromeTrace(unittest.TestCase):
    def valid_trace(self) -> dict:
        return {"displayTimeUnit": "ms", "traceEvents": [
            lane_meta(0, "main"),
            lane_meta(1, "worker-0"),
            lane_meta(2, "worker-1"),
            span(0, "core.step", 0.0, 100.0),
            span(1, "mesh.cic_scatter", 1.0, 2.0),
            span(2, "xsycl.sph_density", 1.5, 2.5),
        ]}

    def test_valid_trace_passes(self):
        self.assertEqual(check_trace_obj(self.valid_trace()), [])

    def test_min_threads_enforced(self):
        problems = check_trace_obj(self.valid_trace(), min_threads=4)
        self.assertTrue(any("--min-threads 4" in p for p in problems))

    def test_min_workers_satisfied(self):
        self.assertEqual(
            check_trace_obj(self.valid_trace(), min_workers=2), [])

    def test_min_workers_enforced(self):
        problems = check_trace_obj(self.valid_trace(), min_workers=3)
        self.assertTrue(any("worker lane" in p for p in problems))

    def test_bad_span_name_flagged(self):
        trace = self.valid_trace()
        trace["traceEvents"].append(span(0, "NotDotted", 5.0, 1.0))
        problems = check_trace_obj(trace)
        self.assertTrue(any("module.phase" in p for p in problems))

    def test_negative_duration_flagged(self):
        trace = self.valid_trace()
        trace["traceEvents"].append(span(0, "core.kick", 5.0, -1.0))
        problems = check_trace_obj(trace)
        self.assertTrue(any("negative duration" in p for p in problems))

    def test_unnamed_lane_flagged(self):
        trace = self.valid_trace()
        trace["traceEvents"].append(span(9, "core.kick", 5.0, 1.0))
        problems = check_trace_obj(trace)
        self.assertTrue(any("no thread_name" in p for p in problems))

    def test_missing_trace_events_flagged(self):
        problems = check_trace_obj({"displayTimeUnit": "ms"})
        self.assertTrue(any('"traceEvents"' in p for p in problems))

    def overlap_trace(self) -> dict:
        # sched.pm on a lane while the short-range chain runs on main.
        return {"traceEvents": [
            lane_meta(0, "main"),
            lane_meta(3, "sched-0"),
            span(0, "core.step", 0.0, 100.0),
            span(0, "sched.short_range", 10.0, 30.0),
            span(3, "sched.pm", 20.0, 40.0),
        ]}

    def test_assert_overlap_passes_on_concurrent_spans(self):
        self.assertEqual(
            check_trace_obj(self.overlap_trace(),
                            assert_overlap="pm,short_range"), [])

    def test_assert_overlap_matches_dot_segments_not_substrings(self):
        # "pm" must match sched.pm but not a hypothetical sched.pmx.
        trace = self.overlap_trace()
        trace["traceEvents"][4] = span(3, "sched.pmx", 20.0, 40.0)
        problems = check_trace_obj(trace, assert_overlap="pm,short_range")
        self.assertTrue(any('no span matches token "pm"' in p
                            for p in problems))

    def test_assert_overlap_flags_disjoint_spans(self):
        trace = self.overlap_trace()
        trace["traceEvents"][4] = span(3, "sched.pm", 50.0, 40.0)
        problems = check_trace_obj(trace, assert_overlap="pm,short_range")
        self.assertTrue(any("all disjoint in time" in p for p in problems))

    def test_assert_overlap_flags_missing_token(self):
        problems = check_trace_obj(self.overlap_trace(),
                                   assert_overlap="pm,far_field")
        self.assertTrue(any('no span matches token "far_field"' in p
                            for p in problems))

    def test_assert_overlap_rejects_malformed_argument(self):
        problems = check_trace_obj(self.overlap_trace(), assert_overlap="pm")
        self.assertTrue(any("exactly two" in p for p in problems))

    def test_not_json_flagged(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "trace.json"
            path.write_text("not json", encoding="utf-8")
            problems = check_events.check_trace(path, 1, 0)
        self.assertTrue(any("not valid JSON" in p for p in problems))


if __name__ == "__main__":
    unittest.main()
