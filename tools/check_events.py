#!/usr/bin/env python3
"""Schema validator for hacc_run observability artifacts.

Two modes:

  JSONL event stream (default)
      python3 tools/check_events.py run.jsonl
    Every line must be a JSON object carrying "type" and "step"; the stream
    must open with `begin`, then `init` or `restart` — optionally preceded
    by the `--restart auto` recovery scan (`ckpt_validate` verdicts and one
    `recovery` record) — and close with `run_summary` followed by `end`.
    Step events must embed the metrics registry snapshot with every
    runner-registered key (the backend-independent set below); checkpoint
    events must name the file, its cost, and its post-write CRC verdict;
    `ckpt_validate` / `recovery` / `error` / `ckpt_prune` events carry the
    checkpoint-durability fields.  The contract is documented in
    docs/OBSERVABILITY.md and docs/RUNNING.md and pinned by
    tests/run/test_events.cpp.

  Chrome trace (--trace)
      python3 tools/check_events.py --trace trace.json [--min-threads N]
                                    [--min-workers N] [--assert-overlap A,B]
    The file must be a trace_event JSON object Perfetto can load: "X"
    duration events with non-negative ts/dur, span names following the
    `module.phase` convention, and thread_name metadata for every lane.
    --min-threads requires that many distinct lanes recorded spans;
    --min-workers requires that many of them to be pool workers
    ("worker-<i>" lanes) — the CI smoke run uses it to prove multi-thread
    tracing end to end.  --assert-overlap A,B requires at least one span
    matching token A to overlap in time with one matching token B (a span
    matches a token when the token equals one of its dot-separated name
    segments, so `pm` matches both `sched.pm` and `gravity.pm`) — the CI
    proof that the step propagator really runs the PM stage concurrently
    with the short-range chain.

Exit status is 0 when the artifact is valid, 1 otherwise (one line per
problem, `path:line: message`).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# Metrics the runner itself registers: present in every step event and in
# run_summary regardless of scenario or gravity backend.  Backend-specific
# producers (e.g. the pm.* family) are intentionally not required here.
REQUIRED_STEP_METRICS = [
    "tree.builds", "tree.reuses", "tree.build_s",
    "sched.pm_s", "sched.short_s", "sched.overlap_s",
    "step.wall_s.count", "step.wall_s.sum",
    "step.wall_s.p50", "step.wall_s.p95", "step.wall_s.p99",
    "step.da.count", "step.da.sum", "step.da.p50", "step.da.p95", "step.da.p99",
    "ops.launches", "ops.kernel_s", "ops.interactions", "ops.m2p",
    "ckpt.writes", "ckpt.bytes", "ckpt.write_s",
    "ckpt.validate", "ckpt.failures", "ckpt.recovered_from",
    "run.outputs", "stepctl.da_next",
]

# Top-level keys required per event type, beyond the universal type/step.
REQUIRED_EVENT_KEYS = {
    "begin": ["scenario", "backend", "mode", "hydro", "restart"],
    "init": ["a"],
    "restart": ["a", "z", "file"],
    "step": ["a", "z", "da", "wall_s", "ke", "metrics"],
    "checkpoint": ["a", "file", "bytes", "write_s", "crc"],
    "ckpt_validate": ["file", "status"],
    "recovery": ["file", "recovered_from", "candidates"],
    "error": ["what"],
    "ckpt_prune": ["file", "pruned_step"],
    "output": ["a", "z", "n_halos", "largest_halo"],
    "run_summary": ["metrics"],
    "end": ["steps", "total_steps", "a", "z", "wall_s", "checkpoints"],
    "max_steps": ["steps"],
}

# Events the `--restart auto` recovery scan may emit between `begin` and the
# `init`/`restart` that actually starts the run.
RECOVERY_SCAN_EVENTS = ("ckpt_validate", "recovery", "error")

# `module.phase`: lowercase module segment; phase segments keep their own
# capitalization (HACC kernel names like `xsycl.upBarAcF` pass through).
SPAN_NAME = re.compile(r"^[a-z][a-z0-9_]*\.[A-Za-z0-9_]+(?:\.[A-Za-z0-9_]+)*$")


def check_jsonl(path: Path) -> list[str]:
    problems: list[str] = []

    def problem(lineno: int, message: str) -> None:
        problems.append(f"{path}:{lineno}: {message}")

    try:
        raw_lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as e:
        return [f"{path}:0: unreadable: {e}"]

    events: list[tuple[int, dict]] = []
    for lineno, raw in enumerate(raw_lines, start=1):
        if not raw.strip():
            continue
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError as e:
            problem(lineno, f"not valid JSON: {e}")
            continue
        if not isinstance(obj, dict):
            problem(lineno, "event line is not a JSON object")
            continue
        events.append((lineno, obj))

    if not events:
        problems.append(f"{path}:0: no events")
        return problems

    for lineno, obj in events:
        etype = obj.get("type")
        if not isinstance(etype, str) or not etype:
            problem(lineno, 'missing or non-string "type"')
            continue
        step = obj.get("step")
        if not isinstance(step, int) or isinstance(step, bool):
            problem(lineno, f'"{etype}" event missing integer "step"')
        for key in REQUIRED_EVENT_KEYS.get(etype, []):
            if key not in obj:
                problem(lineno, f'"{etype}" event missing "{key}"')
        if etype in ("step", "run_summary") and isinstance(obj.get("metrics"), dict):
            metrics = obj["metrics"]
            for key in REQUIRED_STEP_METRICS:
                if key not in metrics:
                    problem(lineno, f'"{etype}" metrics missing "{key}"')
                elif not isinstance(metrics[key], (int, float)):
                    problem(lineno, f'"{etype}" metrics "{key}" is not a number')
        elif etype in ("step", "run_summary") and "metrics" in obj:
            problem(lineno, f'"{etype}" "metrics" is not an object')

    # Stream shape.
    types = [obj.get("type") for _, obj in events]
    if types[0] != "begin":
        problem(events[0][0], f'stream must open with "begin", got "{types[0]}"')
    # After `begin` (and any recovery-scan prelude) the run must announce how
    # it started: fresh ICs (`init`) or a checkpoint (`restart`).
    first_start = next((i for i, t in enumerate(types[1:], start=1)
                        if t not in RECOVERY_SCAN_EVENTS), None)
    if first_start is None or types[first_start] not in ("init", "restart"):
        got = "nothing" if first_start is None else f'"{types[first_start]}"'
        problem(events[min(first_start or 1, len(events) - 1)][0],
                f'after "begin" and the recovery scan the stream must '
                f'continue with "init" or "restart", got {got}')
    if types[-1] != "end":
        problem(events[-1][0], f'stream must close with "end", got "{types[-1]}"')
    elif len(types) < 2 or types[-2] != "run_summary":
        problem(events[-1][0], '"end" must be preceded by "run_summary"')

    # Step events count 1..N in order (restarts start above 1).
    steps = [obj["step"] for _, obj in events
             if obj.get("type") == "step" and isinstance(obj.get("step"), int)]
    for prev, cur in zip(steps, steps[1:]):
        if cur != prev + 1:
            problem(0, f"step events jump from {prev} to {cur}")
            break

    return problems


def check_trace(path: Path, min_threads: int, min_workers: int,
                assert_overlap: str | None = None) -> list[str]:
    problems: list[str] = []

    def problem(message: str) -> None:
        problems.append(f"{path}:0: {message}")

    overlap_tokens: tuple[str, str] | None = None
    if assert_overlap is not None:
        parts = [t.strip() for t in assert_overlap.split(",")]
        if len(parts) != 2 or not all(parts):
            return [f"{path}:0: --assert-overlap needs exactly two "
                    f"comma-separated span tokens, got {assert_overlap!r}"]
        overlap_tokens = (parts[0], parts[1])

    try:
        trace = json.loads(path.read_text(encoding="utf-8"))
    except OSError as e:
        return [f"{path}:0: unreadable: {e}"]
    except json.JSONDecodeError as e:
        return [f"{path}:0: not valid JSON: {e}"]

    if not isinstance(trace, dict) or "traceEvents" not in trace:
        problem('top level must be an object with "traceEvents"')
        return problems
    events = trace["traceEvents"]
    if not isinstance(events, list):
        problem('"traceEvents" must be an array')
        return problems

    lane_names: dict[int, str] = {}
    lanes_with_spans: set[int] = set()
    bad_names: set[str] = set()
    overlap_intervals: tuple[list, list] = ([], [])
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            problem(f"traceEvents[{i}] is not an object")
            continue
        ph = e.get("ph")
        if ph not in ("X", "M"):
            problem(f'traceEvents[{i}] has unexpected ph "{ph}"')
            continue
        if "tid" not in e or "pid" not in e:
            problem(f"traceEvents[{i}] missing pid/tid")
            continue
        if ph == "M":
            if e.get("name") == "thread_name":
                lane_names[e["tid"]] = e.get("args", {}).get("name", "")
            continue
        name = e.get("name")
        if not isinstance(name, str) or not name:
            problem(f"traceEvents[{i}] X event missing name")
            continue
        ts, dur = e.get("ts"), e.get("dur")
        if not isinstance(ts, (int, float)) or not isinstance(dur, (int, float)):
            problem(f'X event "{name}" missing numeric ts/dur')
        elif dur < 0:
            problem(f'X event "{name}" has negative duration {dur}')
        if not SPAN_NAME.match(name) and name not in bad_names:
            bad_names.add(name)
            problem(f'span name "{name}" violates the module.phase convention')
        lanes_with_spans.add(e["tid"])
        if overlap_tokens and isinstance(ts, (int, float)) \
                and isinstance(dur, (int, float)):
            segments = name.split(".")
            for token, intervals in zip(overlap_tokens, overlap_intervals):
                if token in segments:
                    intervals.append((ts, ts + dur))

    for tid in sorted(lanes_with_spans):
        if tid not in lane_names:
            problem(f"lane tid={tid} has spans but no thread_name metadata")

    if len(lanes_with_spans) < min_threads:
        problem(f"only {len(lanes_with_spans)} lane(s) recorded spans; "
                f"--min-threads {min_threads} required")
    workers = sum(1 for tid in lanes_with_spans
                  if lane_names.get(tid, "").startswith("worker-"))
    if workers < min_workers:
        problem(f"only {workers} worker lane(s) recorded spans; "
                f"--min-workers {min_workers} required")

    if overlap_tokens:
        a_token, b_token = overlap_tokens
        a_spans, b_spans = overlap_intervals
        if not a_spans or not b_spans:
            missing = a_token if not a_spans else b_token
            problem(f'--assert-overlap: no span matches token "{missing}"')
        elif not any(a0 < b1 and b0 < a1
                     for a0, a1 in a_spans for b0, b1 in b_spans):
            problem(f'--assert-overlap: no "{a_token}" span overlaps a '
                    f'"{b_token}" span ({len(a_spans)} vs {len(b_spans)} '
                    f'spans, all disjoint in time)')

    return problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", type=Path,
                        help="run JSONL file, or a trace JSON with --trace")
    parser.add_argument("--trace", action="store_true",
                        help="validate a Chrome trace_event file instead")
    parser.add_argument("--min-threads", type=int, default=1,
                        help="trace mode: lanes that must have spans (default 1)")
    parser.add_argument("--min-workers", type=int, default=0,
                        help="trace mode: worker-* lanes that must have spans")
    parser.add_argument("--assert-overlap", metavar="A,B", default=None,
                        help="trace mode: require a span matching token A to "
                             "overlap in time with one matching token B")
    args = parser.parse_args(argv)

    if args.trace:
        problems = check_trace(args.path, args.min_threads, args.min_workers,
                               args.assert_overlap)
    else:
        problems = check_jsonl(args.path)
    for p in problems:
        print(p)
    if problems:
        print(f"check_events: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"check_events: {args.path} OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
