#!/usr/bin/env python3
"""Per-phase / per-thread utilization report for hacc_run --trace output.

  python3 tools/trace_report.py trace.json

Reads a Chrome trace_event file (the `hacc_run --trace=out.json` export) and
prints two tables:

  phases    every span name with call count, total/mean/max duration, and
            its share of the run (the core.step total is the reference
            wall time — the acceptance bar is that it agrees with the
            runner's StepStats totals within 5%).
  threads   every lane with its span count and busy time as a union of
            span intervals (nested spans are not double-counted), plus
            utilization relative to the traced wall span.

Durations in the file are microseconds (Chrome convention); everything is
reported in seconds.  See docs/OBSERVABILITY.md for the span catalog.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path


def load_events(path: Path) -> tuple[list[dict], dict[int, str]]:
    """Returns ("X" duration events, lane names by tid)."""
    trace = json.loads(path.read_text(encoding="utf-8"))
    events = trace.get("traceEvents", []) if isinstance(trace, dict) else []
    lanes: dict[int, str] = {}
    spans: list[dict] = []
    for e in events:
        if not isinstance(e, dict):
            continue
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            lanes[e.get("tid", 0)] = e.get("args", {}).get("name", "")
        elif e.get("ph") == "X":
            spans.append(e)
    return spans, lanes


def merged_busy_us(intervals: list[tuple[float, float]]) -> float:
    """Total covered length of a set of [start, end) intervals.

    Spans nest (core.step contains core.kick contains ...), so a lane's busy
    time is the union of its intervals, not their sum.
    """
    total = 0.0
    end = float("-inf")
    for lo, hi in sorted(intervals):
        if hi <= end:
            continue
        total += hi - max(lo, end)
        end = hi
    return total


def phase_rows(spans: list[dict]) -> list[tuple[str, int, float, float, float]]:
    """[(name, count, total_s, mean_s, max_s)] sorted by total, descending."""
    by_name: dict[str, list[float]] = defaultdict(list)
    for e in spans:
        by_name[e.get("name", "?")].append(float(e.get("dur", 0.0)) / 1e6)
    rows = [(name, len(ds), sum(ds), sum(ds) / len(ds), max(ds))
            for name, ds in by_name.items()]
    rows.sort(key=lambda r: r[2], reverse=True)
    return rows


def thread_rows(spans: list[dict], lanes: dict[int, str]
                ) -> list[tuple[str, int, float, float]]:
    """[(lane, spans, busy_s, utilization)] in tid order.

    Utilization is busy time over the whole traced wall span (first span
    start to last span end across every lane), so idle worker lanes read
    low even when each of their spans was dense.
    """
    by_tid: dict[int, list[tuple[float, float]]] = defaultdict(list)
    for e in spans:
        ts = float(e.get("ts", 0.0))
        by_tid[e.get("tid", 0)].append((ts, ts + float(e.get("dur", 0.0))))
    if not by_tid:
        return []
    t0 = min(lo for iv in by_tid.values() for lo, _ in iv)
    t1 = max(hi for iv in by_tid.values() for _, hi in iv)
    wall_us = max(t1 - t0, 1e-9)
    rows = []
    for tid in sorted(by_tid):
        busy = merged_busy_us(by_tid[tid])
        rows.append((lanes.get(tid, f"thread-{tid}"), len(by_tid[tid]),
                     busy / 1e6, busy / wall_us))
    return rows


def render_report(spans: list[dict], lanes: dict[int, str]) -> str:
    out: list[str] = []
    phases = phase_rows(spans)
    total_s = sum(r[2] for r in phases)
    step_total = next((r[2] for r in phases if r[0] == "core.step"), 0.0)
    wall = step_total if step_total > 0.0 else total_s

    out.append(f"{'phase':<24} {'count':>8} {'total_s':>10} {'mean_ms':>9} "
               f"{'max_ms':>9} {'%wall':>7}")
    for name, count, tot, mean, mx in phases:
        share = 100.0 * tot / wall if wall > 0 else 0.0
        out.append(f"{name:<24} {count:>8} {tot:>10.4f} {mean * 1e3:>9.3f} "
                   f"{mx * 1e3:>9.3f} {share:>6.1f}%")
    out.append("")
    out.append(f"core.step wall: {step_total:.4f} s "
               f"(reference for %wall; sums nested spans separately)")
    out.append("")

    threads = thread_rows(spans, lanes)
    out.append(f"{'thread':<24} {'spans':>8} {'busy_s':>10} {'util':>7}")
    for lane, count, busy, util in threads:
        out.append(f"{lane:<24} {count:>8} {busy:>10.4f} {100.0 * util:>6.1f}%")
    return "\n".join(out)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", type=Path, help="chrome trace JSON file")
    args = parser.parse_args(argv)
    try:
        spans, lanes = load_events(args.path)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace_report: cannot read {args.path}: {e}", file=sys.stderr)
        return 1
    if not spans:
        print(f"trace_report: {args.path} has no duration events",
              file=sys.stderr)
        return 1
    try:
        print(render_report(spans, lanes))
    except BrokenPipeError:  # e.g. piped into head; not an error
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
