#!/usr/bin/env python3
"""Self-tests for tools/trace_report.py (stdlib unittest; pytest-compatible).

Run with either:
  python3 tools/test_trace_report.py
  python3 -m pytest tools/test_trace_report.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import trace_report  # noqa: E402


def span(tid: int, name: str, ts_us: float, dur_us: float) -> dict:
    return {"name": name, "cat": "hacc", "ph": "X", "ts": ts_us,
            "dur": dur_us, "pid": 1, "tid": tid}


def lane(tid: int, name: str) -> dict:
    return {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": name}}


class MergedBusy(unittest.TestCase):
    def test_disjoint_intervals_sum(self):
        self.assertAlmostEqual(
            trace_report.merged_busy_us([(0, 10), (20, 30)]), 20.0)

    def test_nested_intervals_not_double_counted(self):
        # core.step [0,100] containing core.kick [10,20]: busy is 100, not 110.
        self.assertAlmostEqual(
            trace_report.merged_busy_us([(0, 100), (10, 20)]), 100.0)

    def test_overlapping_intervals_merge(self):
        self.assertAlmostEqual(
            trace_report.merged_busy_us([(0, 10), (5, 15)]), 15.0)

    def test_empty(self):
        self.assertAlmostEqual(trace_report.merged_busy_us([]), 0.0)


class PhaseRows(unittest.TestCase):
    def test_counts_totals_and_order(self):
        spans = [span(0, "core.step", 0, 100.0),
                 span(0, "core.kick", 0, 30.0),
                 span(0, "core.kick", 50, 20.0)]
        rows = trace_report.phase_rows(spans)
        self.assertEqual(rows[0][0], "core.step")  # largest total first
        kick = rows[1]
        self.assertEqual(kick[1], 2)                      # count
        self.assertAlmostEqual(kick[2], 50.0 / 1e6)       # total_s
        self.assertAlmostEqual(kick[3], 25.0 / 1e6)       # mean_s
        self.assertAlmostEqual(kick[4], 30.0 / 1e6)       # max_s


class ThreadRows(unittest.TestCase):
    def test_busy_and_utilization(self):
        spans = [span(0, "core.step", 0, 100.0),
                 span(1, "mesh.cic_scatter", 0, 25.0),
                 span(1, "mesh.cic_scatter", 50, 25.0)]
        lanes = {0: "main", 1: "worker-0"}
        rows = trace_report.thread_rows(spans, lanes)
        self.assertEqual(len(rows), 2)
        self.assertEqual(rows[0][0], "main")
        self.assertAlmostEqual(rows[0][3], 1.0)   # busy for the whole wall
        self.assertEqual(rows[1][0], "worker-0")
        self.assertEqual(rows[1][1], 2)
        self.assertAlmostEqual(rows[1][2], 50.0 / 1e6)
        self.assertAlmostEqual(rows[1][3], 0.5)   # half the traced wall

    def test_unnamed_lane_gets_fallback(self):
        rows = trace_report.thread_rows([span(7, "core.step", 0, 10.0)], {})
        self.assertEqual(rows[0][0], "thread-7")


class EndToEnd(unittest.TestCase):
    def test_report_renders_and_main_exits_zero(self):
        trace = {"displayTimeUnit": "ms", "traceEvents": [
            lane(0, "main"), lane(1, "worker-0"),
            span(0, "core.step", 0, 1000.0),
            span(0, "core.kick", 100, 200.0),
            span(1, "xsycl.sph_density", 100, 300.0),
        ]}
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "trace.json"
            path.write_text(json.dumps(trace), encoding="utf-8")
            spans, lanes = trace_report.load_events(path)
            report = trace_report.render_report(spans, lanes)
            self.assertEqual(trace_report.main([str(path)]), 0)
        self.assertIn("core.step", report)
        self.assertIn("worker-0", report)
        self.assertIn("core.step wall: 0.0010 s", report)

    def test_empty_trace_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "trace.json"
            path.write_text(json.dumps({"traceEvents": []}), encoding="utf-8")
            self.assertEqual(trace_report.main([str(path)]), 1)


if __name__ == "__main__":
    unittest.main()
