#!/usr/bin/env python3
"""Link check for the markdown docs.

Verifies that every relative markdown link target in the given files exists
on disk (anchors are stripped; external http(s)/mailto links are skipped).
Exits non-zero listing the broken links.

    python3 tools/check_docs_links.py README.md docs/*.md
"""

import os
import re
import sys

# [text](target) — excluding images' srcsets etc.; good enough for our docs.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# ``` fences: links inside code blocks are examples, not navigation.
FENCE = re.compile(r"^\s*```")


def check_file(path: str) -> list[str]:
    broken = []
    base = os.path.dirname(os.path.abspath(path))
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                if not os.path.exists(os.path.join(base, rel)):
                    broken.append(f"{path}:{lineno}: broken link -> {target}")
    return broken


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    broken = []
    for path in argv[1:]:
        broken.extend(check_file(path))
    for b in broken:
        print(b, file=sys.stderr)
    if broken:
        print(f"{len(broken)} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(argv) - 1} file(s): all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
