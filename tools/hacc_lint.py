#!/usr/bin/env python3
"""Project lint for the HACC reproduction sources.

Checks that clang-tidy cannot express (or cannot express cheaply), focused on
the determinism and concurrency conventions documented in docs/CONCURRENCY.md:

  nondeterminism   No rand()/srand()/time()/clock()/std::random_device in
                   physics sources.  All randomness must flow through the
                   counter-based RNG (src/util/rng.hpp) so runs are
                   reproducible for any thread count.
  no-cout          Library code under src/ must not write to stdout/stderr
                   (std::cout/cerr/clog, printf/fprintf/puts).  Output is the
                   responsibility of the allowlisted writers (the hacc_run
                   front end and the runner's report path).
  header-hygiene   Every header starts with `#pragma once` and contains no
                   file-scope `using namespace`.
  shared-comment   Every parallel_for / parallel_for_chunks call site must
                   carry a `// shared:` comment within the preceding lines
                   naming the captured-by-reference state the lambda writes
                   and why that is race-free.
  nolint-justified Every NOLINT marker must name the suppressed check(s) and
                   carry a `: <reason>` justification.  Bare NOLINT is an
                   error.
  span-name        Every string literal handed to obs::TraceSpan or to
                   Tracer::record()/intern() must follow the `module.phase`
                   naming convention from docs/OBSERVABILITY.md
                   (lowercase, dotted, e.g. `pm.deposit`, `core.step`), so
                   traces group cleanly by subsystem.
  allowlist        Every allowlist entry must carry a justification, and must
                   match at least one current finding (stale entries are
                   errors, so suppressions cannot outlive their cause).

Usage:
  python3 tools/hacc_lint.py [--allowlist tools/lint_allowlist.txt] [paths...]

Paths default to src/.  Exit status is 0 when clean, 1 when findings remain.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

HEADER_SUFFIXES = {".hpp", ".h"}
SOURCE_SUFFIXES = {".cpp", ".cc", ".cxx"} | HEADER_SUFFIXES

# How many lines above a parallel_for call site may hold its `// shared:`
# comment.  Large enough for a short comment block, small enough that the
# comment stays adjacent to the lambda it documents.
SHARED_COMMENT_WINDOW = 10

NONDETERMINISM_PATTERNS = [
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\btime\s*\("), "time()"),
    (re.compile(r"\bclock\s*\("), "clock()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
]

OUTPUT_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*cout\b"), "std::cout"),
    (re.compile(r"\bstd\s*::\s*cerr\b"), "std::cerr"),
    (re.compile(r"\bstd\s*::\s*clog\b"), "std::clog"),
    # Lookbehind admits `std::printf` but not `snprintf`/`obj.printf`.
    (re.compile(r"(?<![\w.>])printf\s*\("), "printf()"),
    (re.compile(r"\bfprintf\s*\("), "fprintf()"),
    (re.compile(r"(?<![\w.>])puts\s*\("), "puts()"),
]

# Member invocations only (`pool.parallel_for`, `pool_->parallel_for_chunks`);
# declarations and qualified definitions spell `ThreadPool::parallel_for` or a
# bare name and are not launch sites.
PARALLEL_FOR_CALL = re.compile(r"(?:->|\.)\s*parallel_for(?:_chunks)?\s*(?:<[^>]*>\s*)?\(")
SHARED_COMMENT = re.compile(r"//\s*shared:")

# `NOLINT(check): reason`, `NOLINTNEXTLINE(check,check2): reason`.  The check
# list and the justification are both mandatory.
NOLINT_ANY = re.compile(r"NOLINT(?:NEXTLINE|BEGIN|END)?\b")
NOLINT_JUSTIFIED = re.compile(r"NOLINT(?:NEXTLINE|BEGIN|END)?\([\w.,\-* ]+\)\s*:\s*\S")
# Prose mentions of the marker ("// NOLINT below: ...") are commentary, not
# suppressions; clang-tidy only honors the marker followed by `(` or
# end-of-comment, so only flag those.
NOLINT_ACTIVE = re.compile(r"NOLINT(?:NEXTLINE|BEGIN|END)?(?:\(|\s*$|\s*\*/)")

USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\b")
PRAGMA_ONCE = re.compile(r"^\s*#\s*pragma\s+once\b")

# Literal span names: `TraceSpan("...")` constructions, plus literals handed
# straight to a Tracer's record()/intern() on the same line.  Dynamic names
# (strings built at runtime, e.g. the queue's "xsycl." + kernel) are out of
# reach of a text lint and are covered by convention in docs/OBSERVABILITY.md.
SPAN_LITERAL_PATTERNS = [
    re.compile(r"\bTraceSpan\s*\w*\s*\(\s*\"([^\"]*)\""),
    re.compile(r"\b[Tt]racer\w*\b[^;\"]*\b(?:record|intern)\s*\(\s*\"([^\"]*)\""),
]
# `module.phase`: lowercase module segment, then at least one phase segment;
# further dots allow sub-phases (`fft.r2c_z`).  Phase segments keep their own
# capitalization so dynamic kernel names (`xsycl.upBarAcF`) fit the same
# convention checked by tools/check_events.py on exported traces.
SPAN_NAME = re.compile(r"^[a-z][a-z0-9_]*\.[A-Za-z0-9_]+(?:\.[A-Za-z0-9_]+)*$")


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blank out comments and string/char literals, preserving line structure.

    A line-oriented scanner with block-comment state; raw strings are treated
    as plain strings, which is fine for the patterns this lint hunts.
    """
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        n = len(line)
        quote = None  # current string/char delimiter, or None
        while i < n:
            c = line[i]
            if in_block:
                if c == "*" and i + 1 < n and line[i + 1] == "/":
                    in_block = False
                    i += 2
                    continue
                i += 1
                continue
            if quote is not None:
                if c == "\\":
                    i += 2
                    continue
                if c == quote:
                    quote = None
                i += 1
                continue
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                break  # rest of line is a comment
            if c == "/" and i + 1 < n and line[i + 1] == "*":
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                result.append(c)
                i += 1
                continue
            result.append(c)
            i += 1
        out.append("".join(result))
    return out


def lint_file(path: Path, repo_root: Path) -> list[Finding]:
    rel = path.relative_to(repo_root).as_posix()
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as e:
        return [Finding(rel, 0, "io", f"unreadable: {e}")]
    lines = text.splitlines()
    code = strip_comments_and_strings(lines)
    findings: list[Finding] = []

    for lineno, stripped in enumerate(code, start=1):
        for pattern, label in NONDETERMINISM_PATTERNS:
            if pattern.search(stripped):
                findings.append(Finding(
                    rel, lineno, "nondeterminism",
                    f"{label} breaks reproducibility; use util::CounterRng "
                    f"(src/util/rng.hpp) or util::wtime"))
        for pattern, label in OUTPUT_PATTERNS:
            if pattern.search(stripped):
                findings.append(Finding(
                    rel, lineno, "no-cout",
                    f"{label} in library code; return data or route through "
                    f"an allowlisted writer"))
        if PARALLEL_FOR_CALL.search(stripped):
            lo = max(0, lineno - 1 - SHARED_COMMENT_WINDOW)
            window = lines[lo:lineno]
            if not any(SHARED_COMMENT.search(w) for w in window):
                findings.append(Finding(
                    rel, lineno, "shared-comment",
                    "parallel_for call site lacks a `// shared:` comment "
                    f"within {SHARED_COMMENT_WINDOW} lines naming the "
                    "captured state the lambda writes"))

    for lineno, raw in enumerate(lines, start=1):
        if NOLINT_ANY.search(raw) and NOLINT_ACTIVE.search(raw):
            if not NOLINT_JUSTIFIED.search(raw):
                findings.append(Finding(
                    rel, lineno, "nolint-justified",
                    "NOLINT must name the suppressed check(s) and give a "
                    "reason: `NOLINT(check-name): why`"))

    # Span names live inside string literals, which the stripped view blanks
    # out, so this rule scans raw lines and skips matches behind a `//`.
    for lineno, raw in enumerate(lines, start=1):
        for pattern in SPAN_LITERAL_PATTERNS:
            for m in pattern.finditer(raw):
                if "//" in raw[:m.start()]:
                    continue
                # A literal followed by `+` is a prefix for a runtime-built
                # name (e.g. intern("xsycl." + kernel)); convention covers
                # the full name, not the fragment.
                if raw[m.end():].lstrip().startswith("+"):
                    continue
                name = m.group(1)
                if not SPAN_NAME.match(name):
                    findings.append(Finding(
                        rel, lineno, "span-name",
                        f'span name "{name}" must follow the `module.phase` '
                        f"convention (lowercase dotted, e.g. pm.deposit; "
                        f"docs/OBSERVABILITY.md)"))

    if path.suffix in HEADER_SUFFIXES:
        if not any(PRAGMA_ONCE.match(line) for line in lines[:5]):
            findings.append(Finding(
                rel, 1, "header-hygiene",
                "header must start with `#pragma once`"))
        for lineno, stripped in enumerate(code, start=1):
            if USING_NAMESPACE.match(stripped):
                findings.append(Finding(
                    rel, lineno, "header-hygiene",
                    "`using namespace` in a header leaks into every includer"))

    return findings


def load_allowlist(path: Path, repo_root: Path) -> tuple[list[tuple[str, str, str, int]], list[Finding]]:
    """Parse `path | rule | justification` lines.

    Returns (entries, findings-about-the-allowlist-itself).  Each entry is
    (file-glob, rule, justification, lineno).
    """
    entries: list[tuple[str, str, str, int]] = []
    problems: list[Finding] = []
    if not path.exists():
        return entries, problems
    rel = path.relative_to(repo_root).as_posix()
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = [p.strip() for p in line.split("|")]
        if len(parts) != 3 or not all(parts):
            problems.append(Finding(
                rel, lineno, "allowlist",
                "malformed entry; expected `path | rule | justification` "
                "with all three fields non-empty"))
            continue
        entries.append((parts[0], parts[1], parts[2], lineno))
    return entries, problems


def apply_allowlist(findings: list[Finding],
                    entries: list[tuple[str, str, str, int]],
                    allowlist_rel: str) -> list[Finding]:
    used = [False] * len(entries)
    kept: list[Finding] = []
    for f in findings:
        suppressed = False
        for idx, (glob, rule, _just, _lineno) in enumerate(entries):
            if rule == f.rule and Path(f.path).match(glob):
                used[idx] = True
                suppressed = True
        if not suppressed:
            kept.append(f)
    for idx, (glob, rule, _just, lineno) in enumerate(entries):
        if not used[idx]:
            kept.append(Finding(
                allowlist_rel, lineno, "allowlist",
                f"stale entry `{glob} | {rule}`: no current finding matches; "
                f"remove it"))
    return kept


def collect_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(q for q in p.rglob("*") if q.suffix in SOURCE_SUFFIXES))
        elif p.suffix in SOURCE_SUFFIXES:
            files.append(p)
    return files


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--allowlist", type=Path, default=None,
                        help="allowlist file (default: tools/lint_allowlist.txt)")
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parent.parent
    paths = args.paths or [repo_root / "src"]
    allowlist_path = args.allowlist or repo_root / "tools" / "lint_allowlist.txt"

    entries, findings = load_allowlist(allowlist_path, repo_root)
    for f in collect_files(paths):
        findings.extend(lint_file(f.resolve(), repo_root))

    try:
        allowlist_rel = allowlist_path.resolve().relative_to(repo_root).as_posix()
    except ValueError:
        allowlist_rel = str(allowlist_path)
    findings = apply_allowlist(findings, entries, allowlist_rel)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f)
    if findings:
        print(f"hacc_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
